//! One session per connection: a dedicated thread that reads frames,
//! dispatches them against the shared database, and writes responses.
//!
//! Sessions are read-mostly: `Query`, `Prepare`, `ExecPrepared`,
//! `ListRelations`, and `SaveImage` all run under the database's *read*
//! lock (the trie cache is interior-mutable behind its own `RwLock`, and
//! plans are shared `Arc`s), so any number of sessions execute in
//! parallel. Only `LoadCsv` takes the write lock.
//!
//! Each session keeps its own engine [`Config`] (seeded from the
//! server's database at connect time); `SetOption` adjusts it without
//! affecting other sessions — two clients can run the same shared plan
//! under different thread counts. Prepared statements are pinned per
//! session with the catalog epoch they were compiled at; executing one
//! after the catalog changed transparently re-prepares through the
//! shared cache, so a stale plan is never run.

use crate::protocol::{
    read_request, write_response, ProtoError, Request, Response, WireDelimiter, MAX_FRAME_LEN,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::server::Shared;
use eh_core::{profile_to_span, Config, Database, Prepared, QueryProfile, QueryResult, Scheduler};
use eh_obs::{SlowQueryEntry, Trace, TraceId};
use eh_storage::trace_wire::encode_trace;
use eh_storage::wire::encode_profile;
use eh_storage::wire::ResultBatch;
use eh_storage::{CsvOptions, Delimiter, RelationSchema, StorageError};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Build the wire batch for a query result: the result's schema (or a
/// positional u32 fallback), its tuples, and every dictionary domain
/// the schema references — self-describing, so the client decodes
/// typed values with no further round-trips.
///
/// Known tradeoff: referenced domains ship *whole* (the batch format
/// keeps dense id → key indexing), so a small result over a huge
/// shared dictionary re-sends that dictionary per response. Trimming
/// to the ids present needs a sparse-domain wire format — noted for a
/// follow-up; for the paper-scale datasets the dictionaries are small.
pub fn batch_from_result(db: &Database, result: &QueryResult) -> ResultBatch {
    let schema = result
        .schema()
        .cloned()
        .or_else(|| db.storage().schema(result.name()).cloned())
        .unwrap_or_else(|| {
            let mut s = RelationSchema::new(result.name());
            for i in 0..result.relation().arity() {
                s = s.column(&format!("c{i}"), eh_storage::ColumnType::U32);
            }
            s
        });
    let mut domains = Vec::new();
    for (_, col) in schema.key_columns() {
        if let Some(key) = col.domain_key() {
            if !domains.iter().any(|(n, _): &(String, _)| *n == key) {
                if let Some(dom) = db.storage().domain(&key) {
                    domains.push((key, dom.clone()));
                }
            }
        }
    }
    ResultBatch {
        schema,
        tuples: result.rows().clone(),
        domains,
    }
}

fn batch_response(db: &Database, result: &QueryResult) -> Response {
    match batch_from_result(db, result).encode() {
        // A batch the framing layer would refuse must become an Error
        // frame here: letting write_frame fail looks like a dead stream
        // to run_session, and the client would see an unexplained
        // disconnect instead of a diagnosis.
        Ok(bytes) if bytes.len() > MAX_FRAME_LEN => Response::Error {
            message: format!(
                "result too large for one frame ({} bytes, limit {MAX_FRAME_LEN}); \
                 narrow the query or aggregate server-side",
                bytes.len()
            ),
        },
        Ok(bytes) => Response::Batch { bytes },
        Err(e) => Response::Error {
            message: format!("result encoding failed: {e}"),
        },
    }
}

fn error(e: impl std::fmt::Display) -> Response {
    Response::Error {
        message: e.to_string(),
    }
}

/// A prepared statement pinned to a session: the shared plan plus the
/// catalog epoch and normalized text it was compiled at, so execution
/// can detect staleness and re-prepare.
struct SessionStmt {
    epoch: u64,
    text: String,
    plan: Arc<Prepared>,
}

/// Per-connection state.
struct Session {
    /// Session-scoped engine configuration (thread count, scheduler,
    /// morsel size) applied to every execution on this connection.
    config: Config,
    /// Protocol version negotiated at handshake; version-1 clients get
    /// version-1 payloads (no `Stats` extension).
    proto_version: u32,
    statements: HashMap<u64, SessionStmt>,
    next_stmt: u64,
}

/// A socket wrapper that feeds byte totals into the shared metrics
/// registry as they cross the wire (two linear scans over a two-entry
/// counter table per syscall — noise next to the syscall itself).
struct Metered<'a, S> {
    inner: S,
    shared: &'a Shared,
}

impl<S: Read> Read for Metered<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.shared.metrics.add("bytes_in", n as u64);
        Ok(n)
    }
}

impl<S: Write> Write for Metered<'_, S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.shared.metrics.add("bytes_out", n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The metrics-registry histogram a request's service time lands in
/// (see [`crate::server::FRAME_KINDS`]).
fn frame_kind(request: &Request) -> &'static str {
    match request {
        Request::Hello { .. } => "hello",
        Request::Query { .. } => "query",
        Request::Prepare { .. } => "prepare",
        Request::ExecPrepared { .. } => "exec_prepared",
        Request::LoadCsv { .. } => "load_csv",
        Request::SaveImage { .. } => "save_image",
        Request::ListRelations => "list_relations",
        Request::Stats => "stats",
        Request::SetOption { .. } => "set_option",
        Request::Quit => "quit",
        Request::ShardExec { .. } => "shard_exec",
        Request::TraceExec { .. } => "trace_exec",
        Request::SlowLog { .. } => "slow_log",
    }
}

/// Feed one finished execution into the server's slow-query log. The
/// hot span comes from the profile when the run was profiled (traced
/// executions); unprofiled runs record `-` — the log still shows what
/// ran and for how long.
fn record_slow(
    shared: &Shared,
    trace_id: u64,
    text: &str,
    result: &QueryResult,
    elapsed_ns: u64,
    sharded: bool,
) {
    let hot_span = match result.profile() {
        Some(p) => profile_to_span("query", p).hottest_leaf(),
        None => "-".to_string(),
    };
    shared.slowlog.observe(SlowQueryEntry {
        trace_id,
        query: text.to_string(),
        rows: result.rows().len() as u64,
        elapsed_ns,
        sharded,
        hot_span,
    });
}

/// Build the wire-encoded worker [`Trace`] for a profiled execution:
/// the span tree under `root_name`, tagged with `trace_id`, carrying
/// the profile's folded kernel counters.
fn worker_trace(trace_id: u64, root_name: &str, profile: &QueryProfile) -> Vec<u8> {
    encode_trace(&Trace {
        trace_id,
        work: profile.work,
        root: profile_to_span(root_name, profile),
    })
}

/// Apply a session-scoped engine option to a config. One parser shared
/// by server sessions and the embedded shell, so both modes accept the
/// same keys and print identical confirmations (the CI smoke diffs
/// embedded output against remote output).
pub(crate) fn apply_option(config: &mut Config, key: &str, value: &str) -> Result<String, String> {
    match key {
        "threads" => {
            let n: usize = value
                .parse()
                .map_err(|_| format!("threads wants a number, got '{value}'"))?;
            *config = config.with_threads(n);
            Ok(format!("threads = {value}"))
        }
        "scheduler" => {
            let s = match value {
                "morsel" => Scheduler::Morsel,
                "static" => Scheduler::Static,
                other => return Err(format!("unknown scheduler '{other}' (morsel|static)")),
            };
            *config = config.with_scheduler(s);
            Ok(format!("scheduler = {value}"))
        }
        "morsel" => {
            let n: usize = value
                .parse()
                .map_err(|_| format!("morsel wants a number, got '{value}'"))?;
            *config = config.with_morsel(n);
            Ok(format!("morsel = {value}"))
        }
        other => Err(format!(
            "unknown option '{other}' (threads|scheduler|morsel|slow_ms)"
        )),
    }
}

/// Resolve a client-supplied `SaveImage` path against the server's
/// configured image directory. With no directory configured the frame
/// is rejected outright; otherwise the client path must be purely
/// relative (`Component::Normal` only — no absolute paths, no `..`, no
/// `.`), so a connected client can never write outside `image_dir`.
pub(crate) fn resolve_image_path(image_dir: Option<&Path>, path: &str) -> Result<PathBuf, String> {
    let Some(dir) = image_dir else {
        return Err(
            "image saves are disabled on this server (start it with an image directory, \
             e.g. eh_shell --serve ADDR --image-dir DIR)"
                .into(),
        );
    };
    let rel = Path::new(path);
    let plain = !path.is_empty() && rel.components().all(|c| matches!(c, Component::Normal(_)));
    if !plain {
        return Err(format!(
            "image path must be relative with no '..' or '.' components \
             (resolved under the server's image directory), got '{path}'"
        ));
    }
    Ok(dir.join(rel))
}

fn csv_options(delimiter: WireDelimiter) -> CsvOptions {
    match delimiter {
        WireDelimiter::Comma => CsvOptions::csv(),
        WireDelimiter::Tab => CsvOptions::tsv(),
        WireDelimiter::Whitespace => CsvOptions {
            delimiter: Delimiter::Whitespace,
            ..CsvOptions::csv()
        },
    }
}

/// Serve one connection to completion. Returns when the client quits,
/// disconnects, or the stream errors (e.g. the server shut it down).
pub(crate) fn run_session<S: Read + Write>(shared: &Shared, stream: S) {
    let mut stream = Metered {
        inner: stream,
        shared,
    };
    // Handshake: the first frame must be a Hello carrying a version the
    // server still serves. The negotiated version (the client's own) is
    // echoed back and pins the session's payload shapes, so a version-1
    // client never sees a protocol-2 extension.
    let negotiated = match read_request(&mut stream) {
        Ok(Request::Hello { version })
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
        {
            let banner = format!(
                "eh_server/{} protocol {}",
                env!("CARGO_PKG_VERSION"),
                version
            );
            if write_response(
                &mut stream,
                &Response::Hello {
                    version,
                    server: banner,
                },
            )
            .is_err()
            {
                return;
            }
            version
        }
        Ok(Request::Hello { version }) => {
            let _ = write_response(
                &mut stream,
                &error(format!(
                    "protocol version mismatch: client {version}, server speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                )),
            );
            return;
        }
        Ok(_) => {
            let _ = write_response(&mut stream, &error("expected Hello as the first frame"));
            return;
        }
        Err(_) => return,
    };

    let mut session = Session {
        config: *shared.db.read().config(),
        proto_version: negotiated,
        statements: HashMap::new(),
        next_stmt: 1,
    };

    loop {
        let request = match read_request(&mut stream) {
            Ok(r) => r,
            // Clean disconnect or malformed frame: either way the
            // stream can't be trusted for another frame.
            Err(ProtoError::Io(_)) => return,
            Err(ProtoError::Malformed(m)) => {
                let _ = write_response(&mut stream, &error(format!("malformed frame: {m}")));
                return;
            }
        };
        let quit = matches!(request, Request::Quit);
        let kind = frame_kind(&request);
        let started = Instant::now();
        let response = dispatch(shared, &mut session, request);
        shared
            .metrics
            .observe(kind, started.elapsed().as_nanos() as u64);
        if write_response(&mut stream, &response).is_err() || quit {
            return;
        }
    }
}

fn dispatch(shared: &Shared, session: &mut Session, request: Request) -> Response {
    match request {
        Request::Hello { .. } => error("unexpected Hello mid-session"),
        Request::Query { text } => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let db = shared.db.read();
            // Single-rule non-recursive texts run through the shared
            // plan cache, so repeated ad-hoc queries amortize
            // compilation exactly like ExecPrepared (a cached text
            // executes without re-parsing at all); multi-rule programs
            // and recursion take the uncached read-only path, still
            // under the read lock.
            let started = Instant::now();
            let result = match shared.cached_plan_gated(&db, &text) {
                Ok(Some(plan)) => plan.execute_with(&db, &session.config),
                Ok(None) => db.query_ref_with(&text, &session.config),
                Err(e) => Err(e),
            };
            match result {
                Ok(result) => {
                    record_slow(
                        shared,
                        0,
                        &text,
                        &result,
                        started.elapsed().as_nanos() as u64,
                        false,
                    );
                    batch_response(&db, &result)
                }
                Err(e) => error(e),
            }
        }
        Request::Prepare { text } => {
            let db = shared.db.read();
            match shared.cached_plan(&db, &text) {
                Ok((plan, cache_hit)) => {
                    let id = session.next_stmt;
                    session.next_stmt += 1;
                    session.statements.insert(
                        id,
                        SessionStmt {
                            epoch: db.epoch(),
                            text,
                            plan,
                        },
                    );
                    Response::Prepared { id, cache_hit }
                }
                Err(e) => error(e),
            }
        }
        Request::ExecPrepared { id } => {
            shared.stats.exec_prepared.fetch_add(1, Ordering::Relaxed);
            let db = shared.db.read();
            let stmt = match session.statements.get_mut(&id) {
                Some(s) => s,
                None => return error(format!("no prepared statement #{id} in this session")),
            };
            // The catalog moved under this statement: transparently
            // re-prepare through the shared cache (which has itself
            // discarded its stale entries) before executing.
            if stmt.epoch != db.epoch() {
                match shared.cached_plan(&db, &stmt.text) {
                    Ok((plan, _)) => {
                        stmt.plan = plan;
                        stmt.epoch = db.epoch();
                    }
                    Err(e) => return error(e),
                }
            }
            let started = Instant::now();
            match stmt.plan.execute_with(&db, &session.config) {
                Ok(result) => {
                    record_slow(
                        shared,
                        0,
                        &stmt.text,
                        &result,
                        started.elapsed().as_nanos() as u64,
                        false,
                    );
                    batch_response(&db, &result)
                }
                Err(e) => error(e),
            }
        }
        Request::LoadCsv {
            relation,
            delimiter,
            data,
        } => {
            let opts = csv_options(delimiter);
            let mut db = shared.db.write();
            match db.load_csv_reader(&relation, std::io::Cursor::new(data), &opts) {
                Ok(report) => Response::Ok {
                    message: format!(
                        "loaded {} rows into {relation}{}",
                        report.rows,
                        if report.skipped > 0 {
                            format!(" ({} skipped)", report.skipped)
                        } else {
                            String::new()
                        }
                    ),
                },
                Err(e) => error(e),
            }
        }
        Request::SaveImage { path } => {
            let resolved = match resolve_image_path(shared.image_dir.as_deref(), &path) {
                Ok(p) => p,
                Err(msg) => return Response::Error { message: msg },
            };
            if let Some(parent) = resolved.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    return error(e);
                }
            }
            let db = shared.db.read();
            match db.save(&resolved) {
                Ok(()) => Response::Ok {
                    message: format!("saved image to {}", resolved.display()),
                },
                Err(e) => error(e),
            }
        }
        Request::ListRelations => {
            let db = shared.db.read();
            let mut names: Vec<String> = db.catalog().names().map(str::to_string).collect();
            names.sort();
            let entries = names
                .into_iter()
                .filter_map(|name| {
                    let rel = db.relation(&name)?;
                    let schema = db
                        .storage()
                        .schema(&name)
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| name.clone());
                    Some(crate::protocol::RelationInfo {
                        name,
                        arity: rel.arity() as u32,
                        rows: rel.len() as u64,
                        schema,
                    })
                })
                .collect();
            Response::Relations { entries }
        }
        Request::Stats => {
            let db = shared.db.read();
            let mut stats = shared.stats_snapshot(&db);
            // Version-1 clients reject trailing bytes: send the base
            // payload they expect.
            if session.proto_version < 2 {
                stats.ext = None;
            }
            Response::Stats(stats)
        }
        Request::SetOption { key, value } => {
            // slow_ms adjusts the *server-wide* slow-query threshold
            // (the log is shared state, not session state), so it is
            // intercepted here rather than parsed into the config.
            if key == "slow_ms" {
                return match value.parse::<u64>() {
                    Ok(ms) => {
                        shared
                            .slowlog
                            .set_threshold_ns(ms.saturating_mul(1_000_000));
                        Response::Ok {
                            message: format!("slow_ms = {ms}"),
                        }
                    }
                    Err(_) => error(format!("slow_ms wants a number, got '{value}'")),
                };
            }
            match apply_option(&mut session.config, &key, &value) {
                Ok(message) => Response::Ok { message },
                Err(message) => Response::Error { message },
            }
        }
        Request::Quit => Response::Ok {
            message: "bye".into(),
        },
        Request::ShardExec {
            text,
            shard_index,
            shard_count,
            trace_id,
        } => {
            if session.proto_version < 2 {
                return error("ShardExec requires protocol version 2");
            }
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let db = shared.db.read();
            let started = Instant::now();
            // A coordinator trace id turns profiling on for this shard:
            // the span tree comes home in the response's trace tail,
            // tagged with that id. Untraced scatters keep the exact
            // PR 9 execution path (profile off, no timing inside the
            // join).
            let cfg = match trace_id {
                Some(_) => session.config.with_profile(true),
                None => session.config,
            };
            // Shardable = single non-recursive rule (the cacheable set)
            // whose partial results ⊕-merge (trivial head expression).
            // Everything else executes in FULL and answers
            // `sharded: false`: the coordinator then keeps exactly one
            // worker's batch, so a cluster still answers every query the
            // single-process engine does — it just doesn't scale the
            // non-mergeable ones.
            let (sharded, result) = match shared.cached_plan_gated(&db, &text) {
                Ok(Some(plan)) if plan.plan().shard_mergeable() => {
                    let cfg = cfg.with_shard(shard_index, shard_count);
                    match plan.execute_sharded_with(&db, &cfg) {
                        Ok((result, level0)) => (Some(level0), Ok(result)),
                        Err(e) => (None, Err(e)),
                    }
                }
                Ok(Some(plan)) => (None, plan.execute_with(&db, &cfg)),
                Ok(None) => (None, db.query_ref_with(&text, &cfg)),
                Err(e) => (None, Err(e)),
            };
            match result {
                Ok(result) => {
                    let elapsed_ns = started.elapsed().as_nanos() as u64;
                    record_slow(
                        shared,
                        trace_id.unwrap_or(0),
                        &text,
                        &result,
                        elapsed_ns,
                        sharded.is_some(),
                    );
                    let trace = match (trace_id, result.profile()) {
                        (Some(id), Some(p)) => Some(worker_trace(
                            id,
                            &format!("shard {shard_index}/{shard_count}"),
                            p,
                        )),
                        _ => None,
                    };
                    let trace_len = trace.as_ref().map(|t| t.len() + 4).unwrap_or(0);
                    // 32 bytes of headroom for the ShardResult fields
                    // around the batch, so the framed payload stays
                    // under the limit.
                    match batch_from_result(&db, &result).encode() {
                        Ok(bytes) if bytes.len() + trace_len + 32 <= MAX_FRAME_LEN => {
                            Response::ShardResult {
                                sharded: sharded.is_some(),
                                level0_values: sharded.unwrap_or(0),
                                elapsed_ns,
                                batch: bytes,
                                trace,
                            }
                        }
                        Ok(bytes) => error(format!(
                            "shard result too large for one frame ({} bytes, limit {MAX_FRAME_LEN}); \
                             narrow the query or aggregate server-side",
                            bytes.len()
                        )),
                        Err(e) => error(format!("result encoding failed: {e}")),
                    }
                }
                Err(e) => error(e),
            }
        }
        Request::TraceExec { text, trace } => {
            if session.proto_version < 2 {
                return error("TraceExec requires protocol version 2");
            }
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let db = shared.db.read();
            let cfg = session.config.with_profile(true);
            let trace_id = TraceId::mint().as_u64();
            let started = Instant::now();
            let result = match shared.cached_plan_gated(&db, &text) {
                Ok(Some(plan)) => plan.execute_with(&db, &cfg),
                Ok(None) => db.query_ref_with(&text, &cfg),
                Err(e) => Err(e),
            };
            match result {
                Ok(result) => {
                    let elapsed_ns = started.elapsed().as_nanos() as u64;
                    record_slow(shared, trace_id, &text, &result, elapsed_ns, false);
                    // Recursive rules execute unprofiled: the Trace
                    // frame then carries empty trace/profile payloads
                    // and the client falls back to rows-only output.
                    let trace_bytes = match (trace, result.profile()) {
                        (true, Some(p)) => worker_trace(trace_id, "query", p),
                        _ => Vec::new(),
                    };
                    let profile_bytes = result.profile().map(encode_profile).unwrap_or_default();
                    match batch_from_result(&db, &result).encode() {
                        Ok(bytes)
                            if bytes.len() + trace_bytes.len() + profile_bytes.len() + 32
                                <= MAX_FRAME_LEN =>
                        {
                            Response::Trace {
                                trace: trace_bytes,
                                profile: profile_bytes,
                                batch: bytes,
                            }
                        }
                        Ok(bytes) => error(format!(
                            "traced result too large for one frame ({} bytes, limit \
                             {MAX_FRAME_LEN}); narrow the query or aggregate server-side",
                            bytes.len()
                        )),
                        Err(e) => error(format!("result encoding failed: {e}")),
                    }
                }
                Err(e) => error(e),
            }
        }
        Request::SlowLog { limit } => {
            if session.proto_version < 2 {
                return error("SlowLog requires protocol version 2");
            }
            Response::SlowLog {
                entries: shared.slowlog.recent(limit as usize),
            }
        }
    }
}

#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    // Shared plans cross session threads; the compiler proves it here.
    check::<Arc<Prepared>>();
    check::<StorageError>();
}

#[cfg(test)]
mod tests {
    use super::resolve_image_path;
    use std::path::{Path, PathBuf};

    #[test]
    fn save_image_is_disabled_without_an_image_dir() {
        let err = resolve_image_path(None, "x.ehdb").unwrap_err();
        assert!(err.contains("disabled"), "{err}");
    }

    #[test]
    fn save_image_paths_stay_inside_the_image_dir() {
        let dir = Path::new("/srv/images");
        assert_eq!(
            resolve_image_path(Some(dir), "x.ehdb").unwrap(),
            PathBuf::from("/srv/images/x.ehdb")
        );
        assert_eq!(
            resolve_image_path(Some(dir), "nightly/x.ehdb").unwrap(),
            PathBuf::from("/srv/images/nightly/x.ehdb")
        );
        for bad in ["/etc/passwd", "../x.ehdb", "a/../../x", "./x.ehdb", ""] {
            assert!(
                resolve_image_path(Some(dir), bad).is_err(),
                "'{bad}' must be rejected"
            );
        }
    }
}
