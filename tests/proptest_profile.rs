//! Differential property tests for `Config::profile`: observability must
//! be read-only. Turning profiling on may attach a [`QueryProfile`] to
//! the result, but the rows, annotations, and scalars themselves must be
//! byte-identical to the unprofiled run — across every ablation config,
//! serial and 4-thread morsel-parallel execution, and both uniform and
//! skewed edge distributions.

use emptyheaded::{Config, Database};
use proptest::prelude::*;

/// Random small directed edge set, uniform over the node domain.
fn arb_uniform_edges(max_node: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::btree_set((0..max_node, 0..max_node), 0..max_edges)
        .prop_map(|s| s.into_iter().filter(|(a, b)| a != b).collect())
}

/// Skewed edge set: sources concentrate on a few hub nodes, so the
/// profiled runs exercise the bitset/galloping kernels whose counter
/// bumps live inside the alloc-free hot loops.
fn arb_skewed_edges(max_node: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::btree_set((0..max_node, 0..max_node), 0..max_edges).prop_map(|s| {
        s.into_iter()
            .map(|(a, b)| (if a % 5 < 3 { a % 3 } else { a }, b))
            .filter(|(a, b)| a != b)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    })
}

/// The fixed differential query mix: a listing, a scalar aggregate, a
/// grouped aggregate, and an anchored selection.
const QUERIES: &[&str] = &[
    "T(x,y,z) :- E(x,y),E(y,z),E(x,z).",
    "C(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.",
    "D(x;w:long) :- E(x,y),E(y,z); w=<<COUNT(*)>>.",
    "A(y) :- E('0',y),E(y,'1').",
];

/// All observable output of one query run: rows, annotations, scalar.
type Observed = (Vec<Vec<u32>>, Vec<String>, Option<u64>);

/// Run every query in the mix twice (cached-trie reuse included) and
/// return all observable output plus whether a profile was attached.
fn run_mix(cfg: Config, edges: &[(u32, u32)]) -> (Vec<Observed>, bool) {
    let mut db = Database::with_config(cfg);
    db.load_edges("E", edges);
    let mut out = Vec::new();
    let mut any_profile = false;
    for q in QUERIES {
        for _ in 0..2 {
            let r = db.query(q).unwrap();
            let rows: Vec<Vec<u32>> = r.rows().iter().map(|row| row.to_vec()).collect();
            let annots: Vec<String> = r
                .annotated_rows()
                .iter()
                .map(|(row, v)| format!("{row:?}={v:?}"))
                .collect();
            any_profile |= r.profile().is_some();
            out.push((rows, annots, r.scalar_u64()));
        }
    }
    (out, any_profile)
}

/// Every ablation preset the engine ships; profiling must be inert on
/// all of them.
fn ablations() -> [Config; 6] {
    [
        Config::default(),
        Config::no_simd(),
        Config::uint_only(),
        Config::no_layout_no_algorithms(),
        Config::no_ghd(),
        Config::block_level(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn profile_is_inert_across_every_ablation(edges in arb_skewed_edges(24, 100)) {
        for base in ablations() {
            let (on, profiled) = run_mix(base.with_profile(true), &edges);
            let (off, unprofiled) = run_mix(base.with_profile(false), &edges);
            prop_assert_eq!(on, off);
            prop_assert!(profiled, "profiled run must attach a QueryProfile");
            prop_assert!(!unprofiled, "unprofiled run must not attach a profile");
        }
    }

    #[test]
    fn profile_is_inert_on_uniform_graphs(edges in arb_uniform_edges(24, 120)) {
        let (on, _) = run_mix(Config::default().with_profile(true), &edges);
        let (off, _) = run_mix(Config::default(), &edges);
        prop_assert_eq!(on, off);
    }

    #[test]
    fn profile_is_inert_in_parallel(edges in arb_skewed_edges(24, 120)) {
        // Per-worker counter merges must not perturb results: 4-thread
        // profiled vs 4-thread plain, and profiled-parallel vs serial.
        let (par_on, profiled) = run_mix(Config::default().with_threads(4).with_profile(true), &edges);
        let (par_off, _) = run_mix(Config::default().with_threads(4), &edges);
        let (serial, _) = run_mix(Config::default().with_threads(1), &edges);
        prop_assert_eq!(&par_on, &par_off);
        prop_assert_eq!(&par_on, &serial);
        prop_assert!(profiled);
    }
}
