//! Benchmark harness utilities shared by the Criterion benches and the
//! `paper-tables` binary.
//!
//! Measurement methodology follows paper §5.1.3: index (trie) construction
//! is excluded — queries are *prepared* (run once to warm every cached
//! trie) before timing; reported numbers are the average of repeated runs
//! with the extremes dropped.

use eh_core::{Config, Database};
use eh_graph::Graph;
use std::time::{Duration, Instant};

pub mod compare;
pub mod paper_tables;

/// A query compiled once against a warmed database, ready for repeated
/// timing: planning (GHD search) and index (trie) construction are paid at
/// construction, not in [`PreparedQuery::run`].
pub struct PreparedQuery {
    db: Database,
    stmt: eh_core::database::Prepared,
}

impl PreparedQuery {
    /// Build the database, register the graph as `Edge`, compile the rule,
    /// and run it once so every trie the plan needs is materialized.
    pub fn new(graph: &Graph, config: Config, query: &str) -> PreparedQuery {
        Self::with_setup(graph, config, query, |_| {})
    }

    /// Like [`PreparedQuery::new`] with extra setup on the database (extra
    /// relations, constants) before warming.
    pub fn with_setup(
        graph: &Graph,
        config: Config,
        query: &str,
        setup: impl FnOnce(&mut Database),
    ) -> PreparedQuery {
        let mut db = Database::with_config(config);
        db.load_graph("Edge", graph);
        setup(&mut db);
        let stmt = db.prepare(query).expect("query must compile");
        let mut pq = PreparedQuery { db, stmt };
        let _ = pq.run();
        pq
    }

    /// Execute once, returning the scalar count (0 if not scalar).
    pub fn run(&mut self) -> u64 {
        self.stmt
            .execute(&self.db)
            .expect("prepared query must run")
            .scalar_u64()
            .unwrap_or(0)
    }

    /// Access the underlying database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }
}

/// Time `f` with `reps` repetitions, dropping the fastest and slowest and
/// averaging the rest (paper §5.1.3 uses 7 runs, drop 2, average 5).
pub fn measure<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(reps >= 3);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    let kept = &times[1..times.len() - 1];
    kept.iter().sum::<Duration>() / kept.len() as u32
}

/// Time `f` with `reps` repetitions and report the **median** run — the
/// statistic the performance-trajectory records (`BENCH_*.json`) store,
/// because it is robust to one-off scheduler hiccups in CI.
pub fn measure_median<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// One timed run (for long-running configurations where repetition is
/// impractical).
pub fn measure_once<T>(mut f: impl FnMut() -> T) -> Duration {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed()
}

/// Render seconds compactly.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Render a slowdown ratio relative to a base time.
pub fn ratio(d: Duration, base: Duration) -> String {
    if base.is_zero() {
        return "-".into();
    }
    format!("{:.2}x", d.as_secs_f64() / base.as_secs_f64())
}

/// Fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table with the given column widths; prints the header row.
    pub fn new(headers: &[(&str, usize)]) -> Table {
        let widths: Vec<usize> = headers.iter().map(|&(_, w)| w).collect();
        let row: Vec<String> = headers.iter().map(|&(h, w)| format!("{h:>w$}")).collect();
        println!("{}", row.join(" "));
        Table { widths }
    }

    /// Print one data row.
    pub fn row(&self, cells: &[String]) {
        let row: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, &w)| format!("{c:>w$}"))
            .collect();
        println!("{}", row.join(" "));
    }
}

/// The standard benchmark queries (paper Table 1 / §5.3).
pub mod queries {
    /// Triangle COUNT(*) (symmetric; run on the pruned graph).
    pub const TRIANGLE: &str = "TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.";
    /// 4-clique COUNT(*) (symmetric; pruned graph).
    pub const K4: &str =
        "K4(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),Edge(y,u),Edge(z,u); w=<<COUNT(*)>>.";
    /// Lollipop COUNT(*) (undirected graph).
    pub const LOLLIPOP: &str =
        "L31(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u); w=<<COUNT(*)>>.";
    /// Barbell COUNT(*) (undirected graph).
    pub const BARBELL: &str =
        "B31(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,a),Edge(a,b),Edge(b,c),Edge(a,c); w=<<COUNT(*)>>.";
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_graph::gen;

    #[test]
    fn prepared_query_runs_repeatably() {
        let g = gen::complete(8).prune_by_degree();
        let mut pq = PreparedQuery::new(&g, Config::default(), queries::TRIANGLE);
        assert_eq!(pq.run(), 56); // C(8,3)
        assert_eq!(pq.run(), 56);
    }

    #[test]
    fn measure_drops_extremes() {
        let d = measure(5, || std::thread::sleep(Duration::from_micros(50)));
        assert!(d >= Duration::from_micros(40));
    }

    #[test]
    fn measure_median_picks_middle_run() {
        let mut i = 0u64;
        let d = measure_median(5, || {
            i += 1;
            std::thread::sleep(Duration::from_micros(20 * i));
        });
        // Median of sleeps {20,40,60,80,100}µs is the 60µs run; allow
        // generous scheduling slack but reject min/max.
        assert!(d >= Duration::from_micros(60), "{d:?}");
    }

    #[test]
    fn ratio_formatting() {
        let base = Duration::from_millis(10);
        assert_eq!(ratio(Duration::from_millis(20), base), "2.00x");
        assert_eq!(ratio(base, Duration::ZERO), "-");
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
    }
}
