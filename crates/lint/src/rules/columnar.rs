//! **columnar**: no `Vec<Vec<u32>>` row-major layouts in engine crates.
//!
//! The paper's storage story is flat columnar buffers — a nested
//! `Vec<Vec<u32>>` reintroduces per-row indirection and per-row
//! allocation, which is exactly the layout EmptyHeaded exists to avoid.
//! Test code may build nested vectors freely (handy for fixtures); the
//! engine crates may not. The old CI grep for this fired on comments
//! and doc examples; this rule sees only real tokens.

use super::{match_seq, FileCtx, Rule, Scope};
use crate::report::Finding;

pub struct Columnar;

/// Crates whose non-test code must stay columnar.
const COVERED: &[&str] = &[
    "crates/exec/",
    "crates/trie/",
    "crates/core/",
    "crates/storage/",
    "crates/server/",
    "crates/obs/",
];

impl Rule for Columnar {
    fn name(&self) -> &'static str {
        "columnar"
    }

    fn description(&self) -> &'static str {
        "no Vec<Vec<u32>> in non-test code of exec/trie/core/storage/server/obs"
    }

    fn applies(&self, path: &str) -> Option<Scope> {
        COVERED
            .iter()
            .any(|p| path.starts_with(p))
            .then_some(Scope::WholeFile)
    }

    fn check(&self, ctx: &FileCtx<'_, '_>, out: &mut Vec<Finding>) {
        let toks = &ctx.lexed.tokens;
        for i in 0..toks.len() {
            if match_seq(toks, i, &["Vec", "<", "Vec", "<", "u32"]) {
                let line = toks[i].line;
                if ctx.active(line) {
                    out.push(ctx.finding(
                        self.name(),
                        line,
                        "Vec<Vec<u32>> is row-major; use a flat buffer + offsets (columnar layout)"
                            .to_string(),
                    ));
                }
            }
        }
    }
}
