//! Inspect the GHD and generated loop nest for any query (paper Figure 1).
//!
//! ```sh
//! cargo run --release -p eh-bench --example plan_inspect -- "T(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z)."
//! ```

use eh_exec::PhysicalPlan;
use eh_ghd::{plan_rule, PlanOptions};
use eh_query::parse_rule;

fn main() {
    let q = std::env::args().nth(1).unwrap_or_else(|| {
        "SK4(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),Edge(y,u),Edge(z,u),Edge(x,'5'); w=<<COUNT(*)>>.".to_string()
    });
    let rule = parse_rule(&q).expect("query parses");
    for (name, opts) in [
        ("optimized", PlanOptions::default()),
        (
            "single-node (-GHD)",
            PlanOptions {
                ghd_optimizations: false,
                ..Default::default()
            },
        ),
    ] {
        let gp = plan_rule(&rule, &opts).expect("query plans");
        println!(
            "=== {name}: fractional width {:.2}, {} node(s), attribute order {:?}",
            gp.ghd.width,
            gp.ghd.node_count(),
            gp.attr_order
        );
        let pp = PhysicalPlan::compile(&rule, &gp);
        println!("{}", pp.render());
    }
}
