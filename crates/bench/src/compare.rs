//! The performance-trajectory gate: compare two `--json` timing documents
//! (as written by `paper_tables ... --json PATH`, e.g. the committed
//! `BENCH_*.json` baselines) and fail on median regressions.
//!
//! ```sh
//! cargo run --release --bin eh_bench -- --compare BENCH_7.json new.json
//! ```
//!
//! Zero dependencies by design: the document format is the flat one
//! `flush_json` emits (`{"scale": S, "entries": [ {..}, .. ]}` where every
//! entry object maps string keys to string or unsigned-integer values), and
//! the scanner below parses exactly that — CI must not need a JSON crate.

use std::fmt::Write as _;

/// Median regressions larger than this ratio fail the gate (new is allowed
/// to be up to 15% slower than old before we call it a regression; noisy CI
/// runners make a tighter bound flaky).
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// Timings below this floor are never compared: a 5µs → 7µs change is
/// timer jitter, not a regression.
pub const MIN_COMPARABLE_US: u64 = 50;

/// One timing record from a `--json` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    pub table: String,
    pub dataset: String,
    pub query: String,
    pub config: String,
    pub median_us: u64,
    pub rows: u64,
}

impl BenchEntry {
    /// The identity a baseline entry is matched on across runs.
    pub fn key(&self) -> (&str, &str, &str, &str) {
        (&self.table, &self.dataset, &self.query, &self.config)
    }
}

// ------------------------------------------------------------- JSON reader

/// Cursor over the document bytes; whitespace-insensitive.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Scanner<'a> {
        Scanner {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parse a JSON string (supporting the escapes `json_str` emits).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Strings are valid UTF-8 (the input is &str); copy the
                    // whole multi-byte character, not just its first byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Skip any JSON value — object, array, string, number, or literal —
    /// without interpreting it. Newer writers add fields (e.g. profile
    /// counters); documents carrying them must stay comparable with old
    /// baselines, so unknown keys are skipped, not rejected.
    fn skip_value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if !self.eat(b'}') {
                    loop {
                        self.string()?;
                        self.expect(b':')?;
                        self.skip_value()?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b'}')?;
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if !self.eat(b']') {
                    loop {
                        self.skip_value()?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b']')?;
                }
            }
            Some(b't') | Some(b'f') | Some(b'n') => {
                // true / false / null
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_alphabetic())
                {
                    self.pos += 1;
                }
            }
            _ => {
                self.number()?;
            }
        }
        Ok(())
    }

    /// Parse a non-negative number, truncating any fraction (the documents
    /// only carry `scale`, `median_us`, `rows`).
    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected a number at byte {start}"));
        }
        let value: f64 = text
            .parse()
            .map_err(|e| format!("bad number {text:?}: {e}"))?;
        if value < 0.0 {
            return Err(format!("negative value {text} not allowed"));
        }
        Ok(value as u64)
    }
}

/// Parse a `--json` timing document into its entries.
pub fn parse_doc(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut s = Scanner::new(text);
    s.expect(b'{')?;
    let mut entries = Vec::new();
    loop {
        let key = s.string()?;
        s.expect(b':')?;
        match key.as_str() {
            "entries" => {
                s.expect(b'[')?;
                if !s.eat(b']') {
                    loop {
                        entries.push(parse_entry(&mut s)?);
                        if !s.eat(b',') {
                            break;
                        }
                    }
                    s.expect(b']')?;
                }
            }
            _ => {
                // scale (or future metadata of any shape): skip and ignore.
                s.skip_value()?;
            }
        }
        if !s.eat(b',') {
            break;
        }
    }
    s.expect(b'}')?;
    Ok(entries)
}

fn parse_entry(s: &mut Scanner<'_>) -> Result<BenchEntry, String> {
    s.expect(b'{')?;
    let mut e = BenchEntry {
        table: String::new(),
        dataset: String::new(),
        query: String::new(),
        config: String::new(),
        median_us: 0,
        rows: 0,
    };
    loop {
        let key = s.string()?;
        s.expect(b':')?;
        match key.as_str() {
            "table" => e.table = s.string()?,
            "dataset" => e.dataset = s.string()?,
            "query" => e.query = s.string()?,
            "config" => e.config = s.string()?,
            "median_us" => e.median_us = s.number()?,
            "rows" => e.rows = s.number()?,
            // Unknown trailing fields (profile counters from newer
            // writers) are skipped so old baselines stay comparable.
            _ => s.skip_value()?,
        }
        if !s.eat(b',') {
            break;
        }
    }
    s.expect(b'}')?;
    Ok(e)
}

// --------------------------------------------------------------- comparison

/// The verdict for one matched (old, new) entry pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Slowdown ratio beyond the threshold.
    Regressed { ratio: f64 },
    /// Row/scalar counts differ — a correctness drift, always fatal.
    RowsDiffer { old_rows: u64, new_rows: u64 },
    /// Within threshold (or too fast to compare meaningfully).
    Ok { ratio: f64 },
}

/// One line of a comparison report.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub entry: BenchEntry,
    pub old_us: u64,
    pub verdict: Verdict,
}

/// Everything [`compare`] learns about two documents: matched pairs
/// with verdicts, baseline entries dropped by the new run (fatal — the
/// suite must not silently shrink), and entries new to this run
/// (informational — the suite may grow).
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    pub report: Vec<Comparison>,
    pub missing: Vec<BenchEntry>,
    pub added: Vec<BenchEntry>,
}

/// Compare `new` against the `old` baseline. Entries are matched on
/// (table, dataset, query, config); baseline entries missing from `new`
/// are reported as failures, entries only in `new` as informational
/// additions.
pub fn compare(old: &[BenchEntry], new: &[BenchEntry], threshold: f64) -> CompareOutcome {
    let mut outcome = CompareOutcome::default();
    for n in new {
        if !old.iter().any(|o| o.key() == n.key()) {
            outcome.added.push(n.clone());
        }
    }
    for o in old {
        let Some(n) = new.iter().find(|n| n.key() == o.key()) else {
            outcome.missing.push(o.clone());
            continue;
        };
        let verdict = if n.rows != o.rows {
            Verdict::RowsDiffer {
                old_rows: o.rows,
                new_rows: n.rows,
            }
        } else {
            let ratio = if o.median_us == 0 {
                1.0
            } else {
                n.median_us as f64 / o.median_us as f64
            };
            let comparable = o.median_us.max(n.median_us) >= MIN_COMPARABLE_US;
            if comparable && ratio > 1.0 + threshold {
                Verdict::Regressed { ratio }
            } else {
                Verdict::Ok { ratio }
            }
        };
        outcome.report.push(Comparison {
            entry: n.clone(),
            old_us: o.median_us,
            verdict,
        });
    }
    outcome
}

/// Render the report; returns true when the gate passes.
pub fn render_report(outcome: &CompareOutcome, threshold: f64, out: &mut String) -> bool {
    let mut ok = true;
    for c in &outcome.report {
        let key = format!(
            "{}/{}/{}/{}",
            c.entry.table, c.entry.dataset, c.entry.query, c.entry.config
        );
        match &c.verdict {
            Verdict::Ok { ratio } => {
                let _ = writeln!(
                    out,
                    "  ok        {key}: {} -> {} us ({ratio:.2}x)",
                    c.old_us, c.entry.median_us
                );
            }
            Verdict::Regressed { ratio } => {
                ok = false;
                let _ = writeln!(
                    out,
                    "  REGRESSED {key}: {} -> {} us ({ratio:.2}x > {:.2}x)",
                    c.old_us,
                    c.entry.median_us,
                    1.0 + threshold
                );
            }
            Verdict::RowsDiffer { old_rows, new_rows } => {
                ok = false;
                let _ = writeln!(
                    out,
                    "  ROWS      {key}: {old_rows} -> {new_rows} (answers drifted)"
                );
            }
        }
    }
    for m in &outcome.missing {
        ok = false;
        let _ = writeln!(
            out,
            "  MISSING   {}/{}/{}/{}: present in baseline, dropped by new run",
            m.table, m.dataset, m.query, m.config
        );
    }
    for a in &outcome.added {
        // Informational only: a growing suite passes, but the grower
        // should see exactly what appeared (and refresh the baseline).
        let _ = writeln!(
            out,
            "  added     {}/{}/{}/{}: absent from baseline ({} us, {} rows)",
            a.table, a.dataset, a.query, a.config, a.median_us, a.rows
        );
    }
    ok
}

/// Entry point for the `eh_bench` binary:
/// `eh_bench --compare OLD.json NEW.json [--threshold 0.15]`.
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: eh_bench --compare OLD.json NEW.json [--threshold R]";
    let threshold = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_THRESHOLD);
    let Some(i) = args.iter().position(|a| a == "--compare") else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let (Some(old_path), Some(new_path)) = (args.get(i + 1), args.get(i + 2)) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let read = |path: &str| -> Vec<BenchEntry> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_doc(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    let outcome = compare(&old, &new, threshold);
    let mut rendered = String::new();
    let ok = render_report(&outcome, threshold, &mut rendered);
    println!(
        "comparing {new_path} against baseline {old_path} (threshold {:.0}%):",
        threshold * 100.0
    );
    print!("{rendered}");
    if ok {
        println!(
            "trajectory gate PASSED ({} entries, {} added)",
            outcome.report.len(),
            outcome.added.len()
        );
    } else {
        println!("trajectory gate FAILED");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: &str, median_us: u64, rows: u64) -> BenchEntry {
        BenchEntry {
            table: "bench-trajectory".into(),
            dataset: "uniform".into(),
            query: query.into(),
            config: "adaptive".into(),
            median_us,
            rows,
        }
    }

    fn doc(entries: &[BenchEntry]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"table\":\"{}\",\"dataset\":\"{}\",\"query\":\"{}\",\"config\":\"{}\",\"median_us\":{},\"rows\":{}}}",
                    e.table, e.dataset, e.query, e.config, e.median_us, e.rows
                )
            })
            .collect();
        format!("{{\"scale\": 0.1,\n \"entries\": [{}]}}", body.join(",\n"))
    }

    #[test]
    fn roundtrips_the_flush_json_format() {
        let entries = vec![entry("triangle", 1234, 56), entry("2hop", 999, 7)];
        let parsed = parse_doc(&doc(&entries)).unwrap();
        assert_eq!(parsed, entries);
        // Escapes and an empty entries array both parse.
        let parsed = parse_doc("{\"scale\": 1, \"entries\": []}").unwrap();
        assert!(parsed.is_empty());
        let parsed =
            parse_doc("{\"entries\":[{\"table\":\"a\\\"b\\u0041\",\"median_us\":3}]}").unwrap();
        assert_eq!(parsed[0].table, "a\"bA");
        assert_eq!(parsed[0].median_us, 3);
    }

    #[test]
    fn unknown_fields_are_skipped_not_rejected() {
        // A profile-bearing document from a newer writer: extra scalar,
        // string, object, and array fields inside entries, plus unknown
        // top-level metadata — all must parse against this reader.
        let text = "{\"scale\": 0.1, \"profiled\": true, \"meta\": {\"host\": \"ci\"},\n\
                    \"entries\": [{\"table\":\"t\",\"dataset\":\"d\",\"query\":\"q\",\
                    \"config\":\"c\",\"median_us\": 100, \"rows\": 4,\
                    \"values_scanned\": 123, \"kernels\": {\"merge\": 5, \"gallop\": [1,2]},\
                    \"note\": \"observed\", \"estimated\": null}]}";
        let parsed = parse_doc(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].median_us, 100);
        assert_eq!(parsed[0].rows, 4);
        assert_eq!(parsed[0].query, "q");
    }

    #[test]
    fn added_entries_are_reported_but_pass() {
        let old = vec![entry("triangle", 1000, 56)];
        let new = vec![entry("triangle", 1000, 56), entry("4clique", 2000, 3)];
        let outcome = compare(&old, &new, DEFAULT_THRESHOLD);
        assert_eq!(outcome.added.len(), 1);
        assert_eq!(outcome.added[0].query, "4clique");
        let mut out = String::new();
        assert!(render_report(&outcome, DEFAULT_THRESHOLD, &mut out));
        assert!(
            out.contains("added     bench-trajectory/uniform/4clique"),
            "{out}"
        );
    }

    #[test]
    fn twenty_percent_regression_fails_the_gate() {
        let old = vec![entry("triangle", 1000, 56), entry("2hop", 1000, 7)];
        // triangle regresses by 20% — beyond the 15% threshold.
        let new = vec![entry("triangle", 1200, 56), entry("2hop", 1010, 7)];
        let outcome = compare(&old, &new, DEFAULT_THRESHOLD);
        assert!(outcome.missing.is_empty());
        let mut out = String::new();
        assert!(!render_report(&outcome, DEFAULT_THRESHOLD, &mut out));
        assert!(out.contains("REGRESSED"), "{out}");
        assert!(
            matches!(outcome.report[0].verdict, Verdict::Regressed { ratio } if (ratio - 1.2).abs() < 1e-9),
            "{:?}",
            outcome.report
        );
        assert!(matches!(outcome.report[1].verdict, Verdict::Ok { .. }));
    }

    #[test]
    fn within_threshold_passes() {
        let old = vec![entry("triangle", 1000, 56)];
        let new = vec![entry("triangle", 1100, 56)];
        let outcome = compare(&old, &new, DEFAULT_THRESHOLD);
        let mut out = String::new();
        assert!(render_report(&outcome, DEFAULT_THRESHOLD, &mut out));
    }

    #[test]
    fn row_drift_and_missing_entries_fail() {
        let old = vec![entry("triangle", 1000, 56), entry("2hop", 500, 7)];
        let new = vec![entry("triangle", 1000, 57)];
        let outcome = compare(&old, &new, DEFAULT_THRESHOLD);
        assert_eq!(outcome.missing.len(), 1);
        assert!(matches!(
            outcome.report[0].verdict,
            Verdict::RowsDiffer {
                old_rows: 56,
                new_rows: 57
            }
        ));
        let mut out = String::new();
        assert!(!render_report(&outcome, DEFAULT_THRESHOLD, &mut out));
        assert!(out.contains("MISSING"), "{out}");
    }

    #[test]
    fn sub_jitter_timings_never_regress() {
        // 5µs -> 40µs is an 8x "slowdown" but below the comparability
        // floor: timer jitter, not signal.
        let old = vec![entry("tiny", 5, 1)];
        let new = vec![entry("tiny", 40, 1)];
        let outcome = compare(&old, &new, DEFAULT_THRESHOLD);
        assert!(
            matches!(outcome.report[0].verdict, Verdict::Ok { .. }),
            "{:?}",
            outcome.report
        );
    }
}
