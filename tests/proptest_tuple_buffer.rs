//! Differential property tests for the columnar refactor: a relation
//! built through the legacy `from_rows` adapter and the same relation
//! built directly as a flat [`TupleBuffer`] must produce *identical*
//! executor output — rows, aggregates, and annotations — under every
//! ablation config the paper studies.

use emptyheaded::exec::{execute_rule, Config, MemCatalog, Relation, Scheduler};
use emptyheaded::query::parse_rule;
use emptyheaded::semiring::{AggOp, DynValue};
use emptyheaded::{Graph, TupleBuffer};
use proptest::prelude::*;

/// The six ablation configurations (paper Tables 8/11 columns).
fn all_configs() -> [Config; 6] {
    [
        Config::default(),
        Config::no_simd(),
        Config::uint_only(),
        Config::no_layout_no_algorithms(),
        Config::no_ghd(),
        Config::block_level(),
    ]
}

/// Random small directed edge set.
fn arb_edges(max_node: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::btree_set((0..max_node, 0..max_node), 0..max_edges)
        .prop_map(|s| s.into_iter().filter(|(a, b)| a != b).collect())
}

/// The two construction paths under test.
fn legacy_and_columnar(edges: &[(u32, u32)]) -> (Relation, Relation) {
    let rows: Vec<Vec<u32>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
    let legacy = Relation::from_rows(2, rows);
    let mut buf = TupleBuffer::new(2);
    for &(a, b) in edges {
        buf.push_row(&[a, b]);
    }
    let columnar = Relation::from_buffer(buf, AggOp::Sum);
    (legacy, columnar)
}

fn catalog_with(rel: Relation) -> MemCatalog {
    let mut cat = MemCatalog::new();
    cat.insert("E", rel);
    cat
}

/// Assert serial == static fan-out == morsel for every ablation config
/// over the paper's pattern-query shapes. Exact-count queries only: u64
/// `⊕` is order-independent, so every scheduler must reproduce the serial
/// result bit-for-bit.
fn scheduler_differential(cat: &MemCatalog) {
    for q in [
        "T(x,y,z) :- E(x,y),E(y,z),E(x,z).",
        "C(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.",
        "P(x,z;w:long) :- E(x,y),E(y,z); w=<<COUNT(*)>>.",
    ] {
        let rule = parse_rule(q).unwrap();
        for base in all_configs() {
            let serial = execute_rule(&rule, cat, &base).unwrap();
            for (scheduler, morsel) in [
                (Scheduler::Static, 0usize),
                (Scheduler::Morsel, 0),
                (Scheduler::Morsel, 1),
                (Scheduler::Morsel, 5),
            ] {
                let cfg = base
                    .with_threads(3)
                    .with_scheduler(scheduler)
                    .with_morsel(morsel);
                let par = execute_rule(&rule, cat, &cfg).unwrap();
                let label = format!("{q} {scheduler:?} morsel={morsel} base={base:?}");
                assert_eq!(serial.rows(), par.rows(), "{label}");
                assert_eq!(serial.annotations(), par.annotations(), "{label}");
                assert_eq!(serial.scalar(), par.scalar(), "{label}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn adapter_and_buffer_relations_execute_identically(edges in arb_edges(18, 90)) {
        let (legacy, columnar) = legacy_and_columnar(&edges);
        prop_assert_eq!(legacy.rows(), columnar.rows());
        for q in [
            "T(x,y,z) :- E(x,y),E(y,z),E(x,z).",   // listing (Rows sink)
            "S(x) :- E(x,y).",                     // projection + dedup
            "C(;w:long) :- E(x,y),E(y,z); w=<<COUNT(*)>>.",   // scalar agg
            "D(x;w:long) :- E(x,y); w=<<COUNT(*)>>.",         // 1-key agg
            "P(x,z;w:long) :- E(x,y),E(y,z); w=<<COUNT(*)>>.", // 2-key (packed u64) agg
        ] {
            let rule = parse_rule(q).unwrap();
            for cfg in all_configs() {
                let a = execute_rule(&rule, &catalog_with(legacy.clone()), &cfg).unwrap();
                let b = execute_rule(&rule, &catalog_with(columnar.clone()), &cfg).unwrap();
                prop_assert_eq!(a.rows(), b.rows(), "{} under {:?}", q, cfg);
                prop_assert_eq!(a.annotations(), b.annotations(), "{} under {:?}", q, cfg);
                prop_assert_eq!(a.scalar(), b.scalar(), "{} under {:?}", q, cfg);
            }
        }
    }

    #[test]
    fn annotated_paths_execute_identically(edges in arb_edges(14, 60)) {
        // Deterministic weights derived from the edge endpoints.
        let weights: Vec<DynValue> = edges
            .iter()
            .map(|&(a, b)| DynValue::F64((a * 31 + b + 1) as f64 / 7.0))
            .collect();
        let rows: Vec<Vec<u32>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
        let legacy = Relation::from_annotated_rows(2, rows, weights.clone(), AggOp::Sum);
        let mut buf = TupleBuffer::new(2);
        for (&(a, b), &w) in edges.iter().zip(&weights) {
            buf.push_annotated(&[a, b], w);
        }
        let columnar = Relation::from_buffer(buf, AggOp::Sum);
        for q in [
            "W(;w:float) :- E(x,y),E(y,z); w=<<SUM(z)>>.",
            "G(x;w:float) :- E(x,y); w=<<SUM(y)>>.",
        ] {
            let rule = parse_rule(q).unwrap();
            for cfg in all_configs() {
                let a = execute_rule(&rule, &catalog_with(legacy.clone()), &cfg).unwrap();
                let b = execute_rule(&rule, &catalog_with(columnar.clone()), &cfg).unwrap();
                prop_assert_eq!(a.rows(), b.rows(), "{} under {:?}", q, cfg);
                prop_assert_eq!(a.annotations(), b.annotations(), "{} under {:?}", q, cfg);
            }
        }
    }

    #[test]
    fn parallel_fanout_matches_serial(edges in arb_edges(16, 80)) {
        // Exact-count queries only: u64 ⊕ is order-independent, so the
        // per-thread sink merge must reproduce the serial result bit-for-bit.
        let (_, columnar) = legacy_and_columnar(&edges);
        for q in [
            "T(x,y,z) :- E(x,y),E(y,z),E(x,z).",
            "C(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.",
            "P(x,z;w:long) :- E(x,y),E(y,z); w=<<COUNT(*)>>.",
        ] {
            let rule = parse_rule(q).unwrap();
            let serial = execute_rule(&rule, &catalog_with(columnar.clone()), &Config::default())
                .unwrap();
            for threads in [2usize, 4] {
                let cfg = Config::default().with_threads(threads);
                let par = execute_rule(&rule, &catalog_with(columnar.clone()), &cfg).unwrap();
                prop_assert_eq!(serial.rows(), par.rows(), "{} x{}", q, threads);
                prop_assert_eq!(serial.annotations(), par.annotations(), "{} x{}", q, threads);
            }
        }
    }

    #[test]
    fn serial_static_morsel_execute_identically_uniform(edges in arb_edges(16, 80)) {
        // Differential equality: serial == static fan-out == morsel, on
        // every ablation config, over uniform random edge sets. Exact
        // (integer) aggregates only, so ⊕-merge order cannot matter.
        let (_, columnar) = legacy_and_columnar(&edges);
        scheduler_differential(&catalog_with(columnar.clone()));
    }

    #[test]
    fn serial_static_morsel_execute_identically_power_law(
        nodes in 24u32..64, seed in 0u64..4_294_967_296u64)
    {
        // The same differential on preferential-attachment graphs — the
        // skewed degree distributions the morsel scheduler exists for.
        let g = Graph::power_law(nodes, 3, seed).prune_by_degree();
        let mut buf = TupleBuffer::new(2);
        for &(a, b) in &g.edges {
            buf.push_row(&[a, b]);
        }
        let rel = Relation::from_buffer(buf, AggOp::Sum);
        scheduler_differential(&catalog_with(rel));
    }

    #[test]
    fn buffer_sort_matches_model(rows in prop::collection::vec(
        prop::collection::vec(0u32..64, 2..=2), 0..150))
    {
        // The radix sorted_dedup agrees with the comparison-sort model,
        // serially and chunk-parallel.
        let buf = TupleBuffer::from_rows(2, &rows);
        let sorted = buf.sorted_dedup(AggOp::Sum);
        let mut model = rows.clone();
        model.sort();
        model.dedup();
        let got: Vec<Vec<u32>> = sorted.iter().map(|r| r.to_vec()).collect();
        prop_assert_eq!(&got, &model);
        let par = buf.sorted_dedup_parallel(AggOp::Sum, 3);
        prop_assert_eq!(&sorted, &par);
    }
}
