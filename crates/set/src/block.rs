//! The composite block layout (paper §4.3 "Block Level").
//!
//! The domain is chopped into fixed 256-value blocks; each block is stored
//! sparse (in-block u8 offsets) or dense (a 256-bit bitvector) depending on
//! its local density. This copes with *internal* skew — e.g. a set with a
//! long sparse region followed by a dense run (paper Figure 6) — at the cost
//! of per-block dispatch.

use crate::simd;
use crate::{bit_of, block_of, Block, BLOCK_BITS, BLOCK_WORDS};

/// Blocks with at least this many elements (out of 256) are stored dense.
/// 32 elements × 8 bits = 256 bits, the break-even point with the bitvector.
pub const DENSE_THRESHOLD: usize = 32;

/// Per-block payload: sparse in-block offsets or a dense bitvector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockData {
    /// Sorted in-block offsets (values are `base + offset`).
    Sparse(Vec<u8>),
    /// 256-bit bitvector.
    Dense(Block),
}

impl BlockData {
    fn len(&self) -> usize {
        match self {
            BlockData::Sparse(v) => v.len(),
            BlockData::Dense(b) => simd::block_count(b) as usize,
        }
    }

    fn bytes(&self) -> usize {
        match self {
            BlockData::Sparse(v) => v.len(),
            BlockData::Dense(_) => BLOCK_WORDS * 8,
        }
    }
}

/// Composite layout: sorted block ids with per-block sparse/dense payloads.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BlockSet {
    ids: Vec<u32>,
    data: Vec<BlockData>,
    /// Exclusive prefix cardinalities for rank queries.
    ranks: Vec<u32>,
    card: usize,
}

impl BlockSet {
    /// Build from sorted, deduplicated values, choosing sparse/dense per
    /// block by [`DENSE_THRESHOLD`].
    pub fn from_sorted(values: &[u32]) -> BlockSet {
        let mut ids: Vec<u32> = Vec::new();
        let mut data: Vec<BlockData> = Vec::new();
        let mut i = 0usize;
        while i < values.len() {
            let blk = block_of(values[i]);
            let mut j = i;
            while j < values.len() && block_of(values[j]) == blk {
                j += 1;
            }
            let run = &values[i..j];
            ids.push(blk);
            if run.len() >= DENSE_THRESHOLD {
                let mut b = [0u64; BLOCK_WORDS];
                for &v in run {
                    let bit = bit_of(v);
                    b[(bit / 64) as usize] |= 1u64 << (bit % 64);
                }
                data.push(BlockData::Dense(b));
            } else {
                data.push(BlockData::Sparse(
                    run.iter().map(|&v| bit_of(v) as u8).collect(),
                ));
            }
            i = j;
        }
        Self::from_parts(ids, data)
    }

    fn from_parts(ids: Vec<u32>, data: Vec<BlockData>) -> BlockSet {
        let mut ranks = Vec::with_capacity(ids.len());
        let mut acc = 0u32;
        for d in &data {
            ranks.push(acc);
            acc += d.len() as u32;
        }
        BlockSet {
            ids,
            data,
            ranks,
            card: acc as usize,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.card
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.card == 0
    }

    /// Heap bytes.
    pub fn bytes(&self) -> usize {
        self.ids.len() * 4
            + self.ranks.len() * 4
            + self.data.iter().map(BlockData::bytes).sum::<usize>()
    }

    /// Fraction of blocks stored dense (diagnostics for Fig. 6).
    pub fn dense_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let dense = self
            .data
            .iter()
            .filter(|d| matches!(d, BlockData::Dense(_)))
            .count();
        dense as f64 / self.data.len() as f64
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        let Ok(i) = self.ids.binary_search(&block_of(v)) else {
            return false;
        };
        let bit = bit_of(v);
        match &self.data[i] {
            BlockData::Sparse(offs) => offs.binary_search(&(bit as u8)).is_ok(),
            BlockData::Dense(b) => b[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0,
        }
    }

    /// Rank of `v`, if present.
    pub fn rank(&self, v: u32) -> Option<usize> {
        let i = self.ids.binary_search(&block_of(v)).ok()?;
        let bit = bit_of(v);
        match &self.data[i] {
            BlockData::Sparse(offs) => {
                let k = offs.binary_search(&(bit as u8)).ok()?;
                Some(self.ranks[i] as usize + k)
            }
            BlockData::Dense(b) => {
                let word = (bit / 64) as usize;
                let mask = 1u64 << (bit % 64);
                if b[word] & mask == 0 {
                    return None;
                }
                let mut r = self.ranks[i];
                for w in 0..word {
                    r += b[w].count_ones();
                }
                r += (b[word] & (mask - 1)).count_ones();
                Some(r as usize)
            }
        }
    }

    /// Largest value, if any.
    pub fn max(&self) -> Option<u32> {
        let i = self.ids.len().checked_sub(1)?;
        let base = self.ids[i] * BLOCK_BITS;
        match &self.data[i] {
            BlockData::Sparse(offs) => offs.last().map(|&o| base + o as u32),
            BlockData::Dense(b) => {
                for w in (0..BLOCK_WORDS).rev() {
                    if b[w] != 0 {
                        return Some(base + w as u32 * 64 + 63 - b[w].leading_zeros());
                    }
                }
                None
            }
        }
    }

    /// Iterate values in ascending order.
    pub fn iter(&self) -> BlockSetIter<'_> {
        BlockSetIter {
            set: self,
            block: 0,
            pos: 0,
            word: 0,
            bits: match self.data.first() {
                Some(BlockData::Dense(b)) => b[0],
                _ => 0,
            },
        }
    }
}

/// Ascending-order iterator over a [`BlockSet`].
pub struct BlockSetIter<'a> {
    set: &'a BlockSet,
    block: usize,
    /// Position within a sparse block.
    pos: usize,
    /// Word index within a dense block.
    word: usize,
    /// Remaining bits of the current dense word.
    bits: u64,
}

impl BlockSetIter<'_> {
    fn advance_block(&mut self) {
        self.block += 1;
        self.pos = 0;
        self.word = 0;
        self.bits = match self.set.data.get(self.block) {
            Some(BlockData::Dense(b)) => b[0],
            _ => 0,
        };
    }
}

impl Iterator for BlockSetIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        loop {
            let data = self.set.data.get(self.block)?;
            let base = self.set.ids[self.block] * BLOCK_BITS;
            match data {
                BlockData::Sparse(offs) => {
                    if self.pos < offs.len() {
                        let v = base + offs[self.pos] as u32;
                        self.pos += 1;
                        return Some(v);
                    }
                    self.advance_block();
                }
                BlockData::Dense(b) => {
                    if self.bits != 0 {
                        let tz = self.bits.trailing_zeros();
                        self.bits &= self.bits - 1;
                        return Some(base + self.word as u32 * 64 + tz);
                    }
                    self.word += 1;
                    if self.word == BLOCK_WORDS {
                        self.advance_block();
                    } else {
                        self.bits = b[self.word];
                    }
                }
            }
        }
    }
}

/// block ∩ block: merge the block-id arrays; per matching block dispatch on
/// the four sparse/dense combinations.
pub fn intersect_block_block(a: &BlockSet, b: &BlockSet, simd_on: bool) -> BlockSet {
    let mut ids = Vec::new();
    let mut data = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.ids.len() && j < b.ids.len() {
        let (x, y) = (a.ids[i], b.ids[j]);
        if x == y {
            if let Some(d) = intersect_block_data(&a.data[i], &b.data[j], simd_on) {
                ids.push(x);
                data.push(d);
            }
            i += 1;
            j += 1;
        } else if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
    BlockSet::from_parts(ids, data)
}

/// Count-only block ∩ block.
pub fn count_block_block(a: &BlockSet, b: &BlockSet) -> usize {
    let mut n = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.ids.len() && j < b.ids.len() {
        let (x, y) = (a.ids[i], b.ids[j]);
        if x == y {
            n += count_block_data(&a.data[i], &b.data[j]);
            i += 1;
            j += 1;
        } else if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
    n
}

fn intersect_block_data(a: &BlockData, b: &BlockData, simd_on: bool) -> Option<BlockData> {
    use BlockData::*;
    let out = match (a, b) {
        (Dense(x), Dense(y)) => {
            let anded = if simd_on {
                simd::and_block(x, y)
            } else {
                simd::and_block_scalar(x, y)
            };
            if anded.iter().all(|w| *w == 0) {
                return None;
            }
            Dense(anded)
        }
        (Sparse(xs), Sparse(ys)) => {
            let mut out = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < xs.len() && j < ys.len() {
                if xs[i] == ys[j] {
                    out.push(xs[i]);
                    i += 1;
                    j += 1;
                } else if xs[i] < ys[j] {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            if out.is_empty() {
                return None;
            }
            Sparse(out)
        }
        (Sparse(xs), Dense(y)) | (Dense(y), Sparse(xs)) => {
            let out: Vec<u8> = xs
                .iter()
                .copied()
                .filter(|&o| y[(o / 64) as usize] & (1u64 << (o % 64)) != 0)
                .collect();
            if out.is_empty() {
                return None;
            }
            Sparse(out)
        }
    };
    Some(out)
}

fn count_block_data(a: &BlockData, b: &BlockData) -> usize {
    use BlockData::*;
    match (a, b) {
        (Dense(x), Dense(y)) => simd::and_block_count(x, y) as usize,
        (Sparse(xs), Sparse(ys)) => {
            let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
            while i < xs.len() && j < ys.len() {
                if xs[i] == ys[j] {
                    n += 1;
                    i += 1;
                    j += 1;
                } else if xs[i] < ys[j] {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            n
        }
        (Sparse(xs), Dense(y)) | (Dense(y), Sparse(xs)) => xs
            .iter()
            .filter(|&&o| y[(o / 64) as usize] & (1u64 << (o % 64)) != 0)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_and_dense_blocks_chosen() {
        // Block 0: 3 values (sparse). Block 1: 200 values (dense).
        let mut vals: Vec<u32> = vec![1, 5, 9];
        vals.extend(256..456);
        let s = BlockSet::from_sorted(&vals);
        assert_eq!(s.len(), 203);
        assert!(matches!(s.data[0], BlockData::Sparse(_)));
        assert!(matches!(s.data[1], BlockData::Dense(_)));
        assert!((s.dense_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn contains_rank_max() {
        let mut vals: Vec<u32> = vec![1, 5, 9];
        vals.extend(256..456);
        let s = BlockSet::from_sorted(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert!(s.contains(v));
            assert_eq!(s.rank(v), Some(i));
        }
        assert!(!s.contains(2));
        assert!(!s.contains(500));
        assert_eq!(s.rank(2), None);
        assert_eq!(s.max(), Some(455));
    }

    #[test]
    fn intersection_mixed_blocks() {
        let mut a_vals: Vec<u32> = vec![1, 5, 9];
        a_vals.extend(256..456);
        let mut b_vals: Vec<u32> = (0..200).collect(); // dense block 0
        b_vals.push(300); // sparse-ish overlap in block 1
        b_vals.push(455);
        let a = BlockSet::from_sorted(&a_vals);
        let b = BlockSet::from_sorted(&b_vals);
        let expect: Vec<u32> = a_vals
            .iter()
            .copied()
            .filter(|v| b_vals.contains(v))
            .collect();
        let r = intersect_block_block(&a, &b, true);
        assert_eq!(r.iter().collect::<Vec<_>>(), expect);
        assert_eq!(count_block_block(&a, &b), expect.len());
        let r2 = intersect_block_block(&a, &b, false);
        assert_eq!(r2.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn empty_result_blocks_are_dropped() {
        let a = BlockSet::from_sorted(&[1, 2, 3]);
        let b = BlockSet::from_sorted(&[4, 5, 6]);
        let r = intersect_block_block(&a, &b, true);
        assert!(r.is_empty());
        assert_eq!(r.ids.len(), 0);
    }

    #[test]
    fn empty_set() {
        let s = BlockSet::from_sorted(&[]);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.max(), None);
        assert_eq!(s.dense_fraction(), 0.0);
    }

    #[test]
    fn dense_threshold_boundary() {
        let vals: Vec<u32> = (0..DENSE_THRESHOLD as u32).collect();
        let s = BlockSet::from_sorted(&vals);
        assert!(matches!(s.data[0], BlockData::Dense(_)));
        let vals: Vec<u32> = (0..DENSE_THRESHOLD as u32 - 1).collect();
        let s = BlockSet::from_sorted(&vals);
        assert!(matches!(s.data[0], BlockData::Sparse(_)));
    }
}
