//! A string-keyed social network through the full storage stack:
//! CSV ingest → dictionary encoding → pattern queries → typed decode →
//! database image save/open round-trip.
//!
//! ```sh
//! cargo run --release --example typed_social
//! ```

use emptyheaded::storage::CsvOptions;
use emptyheaded::{Database, TypedValue};
use std::io::Cursor;

/// Who follows whom (directed). Contains two follow-cycles of length 3:
/// alice→bob→carol→alice and carol→dave→erin→carol.
const FOLLOWS: &str = "\
src:str@user,dst:str@user
alice,bob
bob,carol
carol,alice
carol,dave
dave,erin
erin,carol
erin,alice
";

/// Engagement scores with an f64 payload (becomes the annotation column).
const SCORES: &str = "\
user:str@user,score:f64
alice,3.5
bob,1.25
carol,4.0
dave,0.5
erin,2.0
";

fn main() {
    let mut db = Database::new();
    db.load_csv_reader("Follows", Cursor::new(FOLLOWS), &CsvOptions::csv())
        .expect("follows loads");
    db.load_csv_reader("Score", Cursor::new(SCORES), &CsvOptions::csv())
        .expect("scores load");
    println!(
        "loaded {} follows over {} users",
        db.relation("Follows").unwrap().len(),
        db.storage().domain("user").unwrap().len()
    );

    // Follow-cycles of length 3, decoded back to handles.
    let cycles = db
        .query("T(x,y,z) :- Follows(x,y),Follows(y,z),Follows(z,x).")
        .expect("triangle query runs");
    println!(
        "\nfollow-cycles of length 3 ({} rotations):",
        cycles.num_rows()
    );
    for row in cycles.typed_rows(&db) {
        let handles: Vec<String> = row.iter().map(TypedValue::to_string).collect();
        println!("  {}", handles.join(" -> "));
    }

    // Constants resolve through the same dictionary the loader used.
    let fans = db
        .query("F(x) :- Follows(x,'carol').")
        .expect("selection query runs");
    let names: Vec<String> = fans
        .decode_col(&db, 0)
        .iter()
        .map(TypedValue::to_string)
        .collect();
    println!("\nwho follows carol: {}", names.join(", "));

    // Aggregate over the f64 annotation column: total engagement of the
    // people each user follows.
    let reach = db
        .query("R(x;w:float) :- Follows(x,y),Score(y); w=<<SUM(y)>>.")
        .expect("aggregate query runs");
    println!("\nengagement reach (sum of followees' scores):");
    let mut rows: Vec<(String, f64)> = reach
        .annotated_rows()
        .iter()
        .zip(reach.typed_rows(&db))
        .map(|((_, w), typed)| (typed[0].to_string(), w.as_f64()))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (user, score) in rows {
        println!("  {user:>6}: {score}");
    }

    // Persist the whole database and reopen it: dictionaries, schemas,
    // and query answers survive byte-for-byte. (Decode the cycles first:
    // dropping "T" discards its result schema along with its rows.)
    let cycle_rows = cycles.typed_rows(&db);
    let path = std::env::temp_dir().join(format!("typed_social_{}.ehdb", std::process::id()));
    db.drop_relation("T");
    db.drop_relation("F");
    db.drop_relation("R");
    db.save(&path).expect("image saves");
    let mut reopened = Database::open(&path).expect("image opens");
    let again = reopened
        .query("T(x,y,z) :- Follows(x,y),Follows(y,z),Follows(z,x).")
        .expect("triangle query runs on the reloaded image");
    assert_eq!(again.num_rows(), cycles.num_rows());
    assert_eq!(again.typed_rows(&reopened), cycle_rows);
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let _ = std::fs::remove_file(&path);
    println!("\nsave/open round-trip OK ({size}-byte image, identical decoded answers)");
}
