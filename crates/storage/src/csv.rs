//! Zero-dependency CSV/TSV bulk loading (paper §2.4: relations are
//! loaded once, encoded, and queried many times).
//!
//! The loader streams lines from any `BufRead`, reusing one line buffer
//! and one scratch id row — no per-row heap allocation — and encodes
//! fields straight through the catalog's dictionary domains into a flat
//! [`TupleBuffer`]. The column layout comes either from a registered
//! [`RelationSchema`] or from a `name:type[@domain]` header line.
//!
//! The format is deliberately simple: one record per line, fields split
//! by a configurable delimiter (or arbitrary whitespace), `#`-prefixed
//! comment lines, no quoting or escaping. Malformed rows (wrong field
//! count, unparsable numerics) either abort the load or are counted and
//! skipped, per [`MalformedPolicy`].

use crate::encode::{Domain, StorageCatalog};
use crate::schema::{ColumnDef, ColumnType, RelationSchema, StorageError};
use eh_semiring::DynValue;
use eh_trie::TupleBuffer;
use std::io::BufRead;

/// How fields are separated within a record line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delimiter {
    /// A single byte (`,` for CSV, `\t` for TSV).
    Byte(u8),
    /// Any run of ASCII whitespace (SNAP-style edge lists).
    Whitespace,
}

/// What to do with a row that doesn't match the schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MalformedPolicy {
    /// Abort the load with [`StorageError::Parse`].
    #[default]
    Error,
    /// Count the row in [`LoadReport::skipped`] and continue.
    Skip,
}

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: Delimiter,
    /// Lines starting with this byte are ignored (default `#`).
    pub comment: Option<u8>,
    /// Whether the first record line is a header (default `true`).
    pub has_header: bool,
    /// Malformed-row policy (default [`MalformedPolicy::Error`]).
    pub malformed: MalformedPolicy,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions::csv()
    }
}

impl CsvOptions {
    /// Comma-separated values with a header line.
    pub fn csv() -> CsvOptions {
        CsvOptions {
            delimiter: Delimiter::Byte(b','),
            comment: Some(b'#'),
            has_header: true,
            malformed: MalformedPolicy::Error,
        }
    }

    /// Tab-separated values with a header line.
    pub fn tsv() -> CsvOptions {
        CsvOptions {
            delimiter: Delimiter::Byte(b'\t'),
            ..CsvOptions::csv()
        }
    }

    /// Whitespace-separated, headerless (SNAP edge-list convention).
    pub fn edge_list() -> CsvOptions {
        CsvOptions {
            delimiter: Delimiter::Whitespace,
            has_header: false,
            ..CsvOptions::csv()
        }
    }

    /// Options for a file path, by extension: `.tsv`/`.txt` → TSV,
    /// anything else → CSV.
    pub fn for_path(path: &std::path::Path) -> CsvOptions {
        match path.extension().and_then(|e| e.to_str()) {
            Some("tsv") | Some("txt") => CsvOptions::tsv(),
            _ => CsvOptions::csv(),
        }
    }

    /// Same options without a header line.
    pub fn no_header(mut self) -> CsvOptions {
        self.has_header = false;
        self
    }

    /// Same options, skipping malformed rows instead of erroring.
    pub fn skip_malformed(mut self) -> CsvOptions {
        self.malformed = MalformedPolicy::Skip;
        self
    }

    /// Same options with another field delimiter byte.
    pub fn delimiter(mut self, byte: u8) -> CsvOptions {
        self.delimiter = Delimiter::Byte(byte);
        self
    }
}

/// What a load did: accepted row count plus skipped malformed rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Rows encoded into the buffer.
    pub rows: usize,
    /// Malformed rows dropped under [`MalformedPolicy::Skip`].
    pub skipped: usize,
}

/// Parse a header line into column definitions.
pub fn parse_header(line: &str, delimiter: Delimiter) -> Result<Vec<ColumnDef>, StorageError> {
    let cells: Vec<&str> = match delimiter {
        Delimiter::Byte(b) => line.split(b as char).collect(),
        Delimiter::Whitespace => line.split_whitespace().collect(),
    };
    let mut cols = Vec::with_capacity(cells.len());
    for cell in cells {
        cols.push(ColumnDef::parse(cell)?);
    }
    Ok(cols)
}

/// Per-column encode plan, resolved once before the row loop so the
/// hot path never consults the schema or the domain map.
enum FieldPlan {
    /// `u32` pass-through.
    PassU32,
    /// `f64` → annotation.
    Annot,
    /// Dictionary column; index into the checked-out domain list.
    Dict(usize),
}

impl StorageCatalog {
    /// Load records from `reader` under an explicit schema (registered as
    /// a side effect). When `opts.has_header` the first record line is
    /// skipped (the schema wins). A failed load rolls the registration
    /// back, so an aborted relation never resurfaces (e.g. as an empty
    /// relation in a later image save).
    pub fn load_csv_schema<R: BufRead>(
        &mut self,
        schema: RelationSchema,
        reader: R,
        opts: &CsvOptions,
    ) -> Result<(TupleBuffer, LoadReport), StorageError> {
        let previous = self.schema(&schema.name).cloned();
        self.register_schema(schema.clone())?;
        let result = self.stream_rows(&schema, reader, opts, opts.has_header, 0);
        if result.is_err() {
            self.restore_schema(&schema.name, previous);
        }
        result
    }

    /// Load records whose first line is a `name:type[@domain]` header
    /// describing the columns; the schema is registered under `relation`.
    pub fn load_csv<R: BufRead>(
        &mut self,
        relation: &str,
        mut reader: R,
        opts: &CsvOptions,
    ) -> Result<(TupleBuffer, LoadReport), StorageError> {
        let mut line = String::new();
        let mut consumed = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(StorageError::Format(format!(
                    "'{relation}': no header line found"
                )));
            }
            consumed += 1;
            let text = line.trim_end_matches(['\n', '\r']);
            if text.trim().is_empty() || is_comment(text, opts) {
                continue;
            }
            let columns = parse_header(text, opts.delimiter)?;
            let schema = RelationSchema {
                name: relation.to_string(),
                columns,
                combine: eh_semiring::AggOp::Sum,
            };
            let previous = self.schema(relation).cloned();
            self.register_schema(schema.clone())?;
            // Header already consumed; don't skip another line.
            let result = self.stream_rows(&schema, reader, opts, false, consumed);
            if result.is_err() {
                self.restore_schema(relation, previous);
            }
            return result;
        }
    }

    /// Put a relation's schema back to its pre-load state (rollback on
    /// a failed load). Domains keep any keys the aborted load encoded —
    /// they are append-only and shared, so extra entries are harmless.
    fn restore_schema(&mut self, relation: &str, previous: Option<RelationSchema>) {
        match previous {
            Some(schema) => {
                let _ = self.register_schema(schema);
            }
            None => {
                self.remove_schema(relation);
            }
        }
    }

    /// The shared row loop: check out the schema's domains, encode every
    /// record line, put the domains back.
    fn stream_rows<R: BufRead>(
        &mut self,
        schema: &RelationSchema,
        reader: R,
        opts: &CsvOptions,
        skip_header: bool,
        lines_consumed: usize,
    ) -> Result<(TupleBuffer, LoadReport), StorageError> {
        // Check the needed domains out of the map so the per-field path
        // is a Vec index, not a BTreeMap lookup. Shared domains appear
        // once; every column stores its slot.
        let mut doms: Vec<(String, Domain)> = Vec::new();
        let mut plan: Vec<FieldPlan> = Vec::with_capacity(schema.columns.len());
        for col in &schema.columns {
            match col.ty {
                ColumnType::U32 => plan.push(FieldPlan::PassU32),
                ColumnType::F64 => plan.push(FieldPlan::Annot),
                _ => {
                    let key = col.domain_key().expect("dictionary column");
                    let slot = match doms.iter().position(|(k, _)| *k == key) {
                        Some(i) => i,
                        None => {
                            let dom = self.domains_take(&key)?;
                            doms.push((key, dom));
                            doms.len() - 1
                        }
                    };
                    plan.push(FieldPlan::Dict(slot));
                }
            }
        }
        let result = stream_rows_inner(
            schema,
            &plan,
            &mut doms,
            reader,
            opts,
            skip_header,
            lines_consumed,
        );
        for (key, dom) in doms {
            self.insert_domain(key, dom);
        }
        result
    }

    /// Remove a domain from the map for checkout.
    fn domains_take(&mut self, key: &str) -> Result<Domain, StorageError> {
        self.take_domain(key)
            .ok_or_else(|| StorageError::Schema(format!("unregistered domain '{key}'")))
    }
}

/// The record loop proper, independent of the catalog borrow.
/// `lines_consumed` offsets reported line numbers past an
/// already-consumed header so errors cite physical file lines.
#[allow(clippy::too_many_arguments)]
fn stream_rows_inner<R: BufRead>(
    schema: &RelationSchema,
    plan: &[FieldPlan],
    doms: &mut [(String, Domain)],
    mut reader: R,
    opts: &CsvOptions,
    mut skip_header: bool,
    lines_consumed: usize,
) -> Result<(TupleBuffer, LoadReport), StorageError> {
    let mut buf = TupleBuffer::new(schema.arity());
    let annotated = schema.annot_column().is_some();
    let mut report = LoadReport::default();
    let mut line = String::new();
    let mut scratch: Vec<u32> = Vec::with_capacity(schema.arity());
    let mut lineno = lines_consumed;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let text = line.trim_end_matches(['\n', '\r']);
        if text.trim().is_empty() || is_comment(text, opts) {
            continue;
        }
        if skip_header {
            skip_header = false;
            continue;
        }
        scratch.clear();
        let mut annot = DynValue::F64(0.0);
        let mut fields = 0usize;
        let mut bad: Option<String> = None;
        let field_iter: Box<dyn Iterator<Item = &str>> = match opts.delimiter {
            Delimiter::Byte(b) => Box::new(text.split(b as char)),
            Delimiter::Whitespace => Box::new(text.split_whitespace()),
        };
        for field in field_iter {
            if fields == plan.len() {
                fields += 1; // too many fields
                break;
            }
            match &plan[fields] {
                FieldPlan::PassU32 => match field.trim().parse::<u32>() {
                    Ok(v) => scratch.push(v),
                    Err(_) => {
                        bad = Some(format!("'{}' is not a u32", field.trim()));
                        break;
                    }
                },
                FieldPlan::Annot => match field.trim().parse::<f64>() {
                    Ok(v) => annot = DynValue::F64(v),
                    Err(_) => {
                        bad = Some(format!("'{}' is not an f64", field.trim()));
                        break;
                    }
                },
                FieldPlan::Dict(slot) => match doms[*slot].1.encode_text(field) {
                    Ok(id) => scratch.push(id),
                    Err(msg) => {
                        bad = Some(msg);
                        break;
                    }
                },
            }
            fields += 1;
        }
        if bad.is_none() && fields != plan.len() {
            bad = Some(format!("expected {} fields, got {fields}", plan.len()));
        }
        if let Some(msg) = bad {
            match opts.malformed {
                MalformedPolicy::Error => return Err(StorageError::Parse { line: lineno, msg }),
                MalformedPolicy::Skip => {
                    report.skipped += 1;
                    continue;
                }
            }
        }
        if annotated {
            buf.push_annotated(&scratch, annot);
        } else {
            buf.push_row(&scratch);
        }
        report.rows += 1;
    }
    Ok((buf, report))
}

fn is_comment(text: &str, opts: &CsvOptions) -> bool {
    match opts.comment {
        Some(c) => text.as_bytes().first() == Some(&c),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypedValue;
    use std::io::Cursor;

    #[test]
    fn header_driven_tsv() {
        let data = "# social edges\nsrc:str@user\tdst:str@user\nalice\tbob\nbob\tcarol\n";
        let mut cat = StorageCatalog::new();
        let (buf, rep) = cat
            .load_csv("Follows", Cursor::new(data), &CsvOptions::tsv())
            .unwrap();
        assert_eq!(
            rep,
            LoadReport {
                rows: 2,
                skipped: 0
            }
        );
        assert_eq!(buf.arity(), 2);
        assert_eq!(
            cat.decode_key("Follows", 0, buf.row(1)[1]),
            Some(TypedValue::Str("carol".into()))
        );
    }

    #[test]
    fn schema_driven_csv_with_annotation() {
        let schema = RelationSchema::parse("R(k:u64, w:f64)").unwrap();
        let data = "100,0.5\n7,1.25\n";
        let mut cat = StorageCatalog::new();
        let (buf, rep) = cat
            .load_csv_schema(schema, Cursor::new(data), &CsvOptions::csv().no_header())
            .unwrap();
        assert_eq!(rep.rows, 2);
        assert_eq!(buf.arity(), 1);
        assert_eq!(buf.annot(1), Some(DynValue::F64(1.25)));
        assert_eq!(buf.row(0), &[0], "u64 dictionary-encoded densely");
    }

    #[test]
    fn schema_driven_skips_header_line() {
        let schema = RelationSchema::parse("E(s:u32, d:u32)").unwrap();
        let data = "s:u32,d:u32\n1,2\n";
        let mut cat = StorageCatalog::new();
        let (buf, _) = cat
            .load_csv_schema(schema, Cursor::new(data), &CsvOptions::csv())
            .unwrap();
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.row(0), &[1, 2]);
    }

    #[test]
    fn whitespace_edge_list() {
        let data = "# comment\n0 1\n1   2\n";
        let schema = RelationSchema::parse("E(s:u64@node, d:u64@node)").unwrap();
        let mut cat = StorageCatalog::new();
        let (buf, rep) = cat
            .load_csv_schema(schema, Cursor::new(data), &CsvOptions::edge_list())
            .unwrap();
        assert_eq!(rep.rows, 2);
        assert_eq!(buf.row(1), &[1, 2]);
    }

    #[test]
    fn malformed_policy_error_vs_skip() {
        let data = "k:u32,w:f64\n1,0.5\noops,1\n2\n3,2.5\n";
        let mut cat = StorageCatalog::new();
        let err = cat.load_csv("R", Cursor::new(data), &CsvOptions::csv());
        assert!(matches!(err, Err(StorageError::Parse { line: 3, .. })));
        let mut cat = StorageCatalog::new();
        let (buf, rep) = cat
            .load_csv("R", Cursor::new(data), &CsvOptions::csv().skip_malformed())
            .unwrap();
        assert_eq!(
            rep,
            LoadReport {
                rows: 2,
                skipped: 2
            }
        );
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn too_many_fields_is_malformed() {
        let data = "a:u32\n1,2\n";
        let mut cat = StorageCatalog::new();
        assert!(cat
            .load_csv("R", Cursor::new(data), &CsvOptions::csv())
            .is_err());
    }

    #[test]
    fn empty_input_has_no_header() {
        let mut cat = StorageCatalog::new();
        let r = cat.load_csv("R", Cursor::new(""), &CsvOptions::csv());
        assert!(matches!(r, Err(StorageError::Format(_))));
    }

    #[test]
    fn custom_delimiter() {
        let data = "a:str|b:str\nx|y\n";
        let mut cat = StorageCatalog::new();
        let (buf, _) = cat
            .load_csv("R", Cursor::new(data), &CsvOptions::csv().delimiter(b'|'))
            .unwrap();
        assert_eq!(buf.len(), 1);
    }
}
