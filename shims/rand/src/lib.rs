//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256** seeded via
//! SplitMix64 — high-quality, deterministic, and dependency-free. It is NOT
//! cryptographically secure, which matches how the workspace uses it
//! (synthetic graph generation and benchmarks only).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Uniform f64 in [0, 1) from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer in [0, bound) by rejection sampling (Lemire-style
/// threshold on the low 64 bits).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = widening_mul(x, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Wraps to 0 exactly when the range covers the full u64
                // domain, where any value is valid.
                let span = ((hi as u64) - (lo as u64)).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator, seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        // Regression: span arithmetic for `lo..=MAX` wraps to 0 and must
        // not panic in debug builds.
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(0usize..=usize::MAX);
        let v = rng.gen_range(250u8..=u8::MAX);
        assert!(v >= 250);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }
}
