//! The oracle layout/algorithm optimizer (paper §4.4 "Oracle Comparison").
//!
//! The oracle is an unachievable lower bound: for every individual
//! intersection it is allowed to pick any layout pair and any algorithm,
//! with perfect knowledge of each combination's cost. We implement it the
//! way the paper does — brute force: run *every* combination, time each,
//! and charge only the best one. Table 4 compares the relation-, set- and
//! block-level optimizers against this bound.

use crate::intersect::{intersect_count, IntersectConfig};
use crate::{LayoutKind, Set};
use std::time::{Duration, Instant};

/// Cost report for a single oracle-evaluated intersection.
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// Best (minimum) time over all combinations.
    pub best: Duration,
    /// The winning layout pair.
    pub best_layouts: (LayoutKind, LayoutKind),
    /// Time of every combination tried, for diagnostics.
    pub all: Vec<((LayoutKind, LayoutKind), Duration)>,
}

const KINDS: [LayoutKind; 3] = [LayoutKind::Uint, LayoutKind::Bitset, LayoutKind::Block];

/// Time one count-intersection under every layout combination and return
/// the oracle (minimum) outcome. `a` and `b` are the sorted value arrays of
/// the two sets; rebuild cost is *not* charged (the oracle assumes perfect
/// pre-materialization, which is what makes it a lower bound).
pub fn oracle_intersect(a: &[u32], b: &[u32], cfg: &IntersectConfig) -> OracleOutcome {
    let mut all = Vec::with_capacity(9);
    let mut best = Duration::MAX;
    let mut best_layouts = (LayoutKind::Uint, LayoutKind::Uint);
    for ka in KINDS {
        let sa = Set::from_sorted(a, ka);
        for kb in KINDS {
            let sb = Set::from_sorted(b, kb);
            // Warm once, then charge the best of three runs — the oracle
            // assumes perfect knowledge, so cold-cache noise must not make
            // it look slower than a real (warm, amortized) optimizer.
            std::hint::black_box(intersect_count(&sa, &sb, cfg));
            let mut dt = Duration::MAX;
            for _ in 0..3 {
                let t0 = Instant::now();
                std::hint::black_box(intersect_count(&sa, &sb, cfg));
                dt = dt.min(t0.elapsed());
            }
            all.push(((ka, kb), dt));
            if dt < best {
                best = dt;
                best_layouts = (ka, kb);
            }
        }
    }
    OracleOutcome {
        best,
        best_layouts,
        all,
    }
}

/// Sum of oracle-best times over a workload of intersections. This is the
/// denominator of Table 4's "relative time to the oracle" rows.
pub fn oracle_total(pairs: &[(&[u32], &[u32])], cfg: &IntersectConfig) -> Duration {
    pairs
        .iter()
        .map(|(a, b)| oracle_intersect(a, b, cfg).best)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_tries_all_nine_combinations() {
        let a: Vec<u32> = (0..256).collect();
        let b: Vec<u32> = (128..384).collect();
        let out = oracle_intersect(&a, &b, &IntersectConfig::default());
        assert_eq!(out.all.len(), 9);
        assert!(out.best <= out.all.iter().map(|(_, d)| *d).min().unwrap());
    }

    #[test]
    fn oracle_best_is_minimum() {
        let a: Vec<u32> = (0..512).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..512).map(|i| i * 3).collect();
        let out = oracle_intersect(&a, &b, &IntersectConfig::default());
        for (_, d) in &out.all {
            assert!(out.best <= *d);
        }
    }

    #[test]
    fn oracle_total_sums() {
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (32..96).collect();
        let t = oracle_total(&[(&a, &b), (&b, &a)], &IntersectConfig::default());
        assert!(t > Duration::ZERO);
    }
}
