//! A blocking client for the query server.
//!
//! [`EhClient`] speaks the frame protocol over TCP or a Unix socket and
//! hands results back as [`ResultSet`]s — decoded
//! [`eh_storage::ResultBatch`]es whose dictionary domains travelled
//! with the result, so `typed_rows()` yields the loader's original
//! strings/u64s with no server round-trips.

use crate::protocol::{
    read_response, write_request, ProtoError, RelationInfo, Request, Response, ServerStats,
    WireDelimiter, PROTOCOL_VERSION,
};
use crate::server::Addr;
use eh_obs::{SlowQueryEntry, Trace};
use eh_semiring::DynValue;
use eh_storage::wire::{decode_profile, ResultBatch};
use eh_storage::{decode_trace, TypedValue};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The peer broke the frame protocol.
    Protocol(String),
    /// The server answered with an error frame (session stays usable).
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => ClientError::Io(e),
            ProtoError::Malformed(m) => ClientError::Protocol(m),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A decoded query result, typed-value iteration included. The raw
/// batch bytes are kept as received, so differential tests can compare
/// server answers byte-for-byte against in-process execution.
#[derive(Clone, Debug)]
pub struct ResultSet {
    bytes: Vec<u8>,
    batch: ResultBatch,
}

impl ResultSet {
    fn from_bytes(bytes: Vec<u8>) -> Result<ResultSet, ClientError> {
        let batch =
            ResultBatch::decode(&bytes).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(ResultSet { bytes, batch })
    }

    /// Build a result set from an in-memory batch (the coordinator's
    /// merged answer), re-encoding so [`ResultSet::raw_bytes`] carries
    /// exactly what a single server would have sent.
    pub(crate) fn from_batch(batch: ResultBatch) -> Result<ResultSet, ClientError> {
        let bytes = batch
            .encode()
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(ResultSet { bytes, batch })
    }

    /// Result relation name.
    pub fn name(&self) -> &str {
        self.batch.name()
    }

    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        self.batch.num_rows()
    }

    /// True when the result holds no rows.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The decoded batch (schema + tuples + shipped domains).
    pub fn batch(&self) -> &ResultBatch {
        &self.batch
    }

    /// The result exactly as it crossed the wire.
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// All rows decoded to typed values (dictionary ids mapped back to
    /// the loader's original keys, client-side).
    pub fn typed_rows(&self) -> Vec<Vec<TypedValue>> {
        self.batch.typed_rows()
    }

    /// Parallel annotation column, if present.
    pub fn annotations(&self) -> Option<&[DynValue]> {
        self.batch.annotations()
    }

    /// Scalar (aggregate-only) results as u64.
    pub fn scalar_u64(&self) -> Option<u64> {
        self.batch.scalar_u64()
    }

    /// Scalar (aggregate-only) results as f64.
    pub fn scalar_f64(&self) -> Option<f64> {
        self.batch.scalar_f64()
    }
}

/// One worker's answer to a [`EhClient::shard_exec`] call.
#[derive(Debug)]
pub struct ShardOutcome {
    /// True when the worker executed only its level-0 slice; false when
    /// the plan was not shard-mergeable and `result` is the full answer.
    pub sharded: bool,
    /// Level-0 values the shard owned (0 when `sharded` is false).
    pub level0_values: u64,
    /// Server-side execution time, nanoseconds.
    pub elapsed_ns: u64,
    /// The shard's partial (or full) result.
    pub result: ResultSet,
    /// The worker's span tree, present iff the request carried a trace
    /// id and the worker could profile the plan.
    pub trace: Option<Trace>,
}

/// A traced execution's answer: the rows plus whatever observability
/// payloads the server attached (absent for recursive rules, which
/// execute unprofiled).
#[derive(Debug)]
pub struct TraceOutcome {
    /// The server's span tree, when tracing was requested and available.
    pub trace: Option<Trace>,
    /// The raw query profile (tree timings + kernel counters).
    pub profile: Option<eh_obs::QueryProfile>,
    /// The query result.
    pub result: ResultSet,
}

/// A prepared-statement handle returned by [`EhClient::prepare`].
#[derive(Clone, Copy, Debug)]
pub struct StatementHandle {
    /// Session-scoped statement id.
    pub id: u64,
    /// Whether the server found the plan in its shared cache.
    pub cache_hit: bool,
}

/// A blocking connection to a running `eh_server`.
pub struct EhClient {
    stream: Stream,
    server_banner: String,
    protocol_version: u32,
}

impl EhClient {
    /// Connect and handshake. `addr` accepts `unix:/path`, `tcp:host:port`,
    /// a bare socket path, or a bare `host:port`.
    pub fn connect(addr: &str) -> Result<EhClient, ClientError> {
        let stream = match Addr::parse(addr) {
            Addr::Tcp(hp) => Stream::Tcp(TcpStream::connect(hp)?),
            #[cfg(unix)]
            Addr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            #[cfg(not(unix))]
            Addr::Unix(path) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("unix sockets unavailable: {}", path.display()),
                )))
            }
        };
        let mut client = EhClient {
            stream,
            server_banner: String::new(),
            protocol_version: PROTOCOL_VERSION,
        };
        let resp = client.round_trip(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match resp {
            Response::Hello { version, server } => {
                client.server_banner = server;
                client.protocol_version = version;
                Ok(client)
            }
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// The server's banner string from the handshake.
    pub fn server_banner(&self) -> &str {
        &self.server_banner
    }

    /// The protocol version negotiated at handshake.
    pub fn protocol_version(&self) -> u32 {
        self.protocol_version
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.stream, req)?;
        Ok(read_response(&mut self.stream)?)
    }

    /// Dispatch a request whose answer should be a result batch.
    fn batch_request(&mut self, req: &Request) -> Result<ResultSet, ClientError> {
        match self.round_trip(req)? {
            Response::Batch { bytes } => ResultSet::from_bytes(bytes),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Batch, got {other:?}"
            ))),
        }
    }

    /// Dispatch a request whose answer should be a bare Ok.
    fn ok_request(&mut self, req: &Request) -> Result<String, ClientError> {
        match self.round_trip(req)? {
            Response::Ok { message } => Ok(message),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Execute a program read-only and fetch the last rule's result.
    pub fn query(&mut self, text: &str) -> Result<ResultSet, ClientError> {
        self.batch_request(&Request::Query { text: text.into() })
    }

    /// Execute one level-0 shard of `text` (coordinator side of the
    /// cluster scatter-gather; requires protocol ≥ 2 on the wire, which
    /// this client always speaks).
    pub fn shard_exec(
        &mut self,
        text: &str,
        shard_index: u32,
        shard_count: u32,
        trace_id: Option<u64>,
    ) -> Result<ShardOutcome, ClientError> {
        let req = Request::ShardExec {
            text: text.into(),
            shard_index,
            shard_count,
            trace_id,
        };
        match self.round_trip(&req)? {
            Response::ShardResult {
                sharded,
                level0_values,
                elapsed_ns,
                batch,
                trace,
            } => Ok(ShardOutcome {
                sharded,
                level0_values,
                elapsed_ns,
                result: ResultSet::from_bytes(batch)?,
                trace: match trace {
                    Some(bytes) => Some(
                        decode_trace(&bytes).map_err(|e| ClientError::Protocol(e.to_string()))?,
                    ),
                    None => None,
                },
            }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected ShardResult, got {other:?}"
            ))),
        }
    }

    /// Execute `text` with profiling on, returning rows plus the
    /// server's span tree (`trace: true`) and wire-encoded profile.
    /// Requires protocol ≥ 2.
    pub fn trace_exec(&mut self, text: &str, trace: bool) -> Result<TraceOutcome, ClientError> {
        let req = Request::TraceExec {
            text: text.into(),
            trace,
        };
        match self.round_trip(&req)? {
            Response::Trace {
                trace,
                profile,
                batch,
            } => Ok(TraceOutcome {
                trace: if trace.is_empty() {
                    None
                } else {
                    Some(decode_trace(&trace).map_err(|e| ClientError::Protocol(e.to_string()))?)
                },
                profile: if profile.is_empty() {
                    None
                } else {
                    Some(
                        decode_profile(&profile)
                            .map_err(|e| ClientError::Protocol(e.to_string()))?,
                    )
                },
                result: ResultSet::from_bytes(batch)?,
            }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Trace, got {other:?}"
            ))),
        }
    }

    /// The server's most recent slow-query entries, newest first.
    /// Requires protocol ≥ 2.
    pub fn slow_log(&mut self, limit: u32) -> Result<Vec<SlowQueryEntry>, ClientError> {
        match self.round_trip(&Request::SlowLog { limit })? {
            Response::SlowLog { entries } => Ok(entries),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected SlowLog, got {other:?}"
            ))),
        }
    }

    /// Compile a single rule through the server's shared plan cache.
    pub fn prepare(&mut self, text: &str) -> Result<StatementHandle, ClientError> {
        match self.round_trip(&Request::Prepare { text: text.into() })? {
            Response::Prepared { id, cache_hit } => Ok(StatementHandle { id, cache_hit }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Prepared, got {other:?}"
            ))),
        }
    }

    /// Execute a statement previously prepared on this connection.
    pub fn exec(&mut self, stmt: StatementHandle) -> Result<ResultSet, ClientError> {
        self.batch_request(&Request::ExecPrepared { id: stmt.id })
    }

    /// Bulk-load delimited bytes (first line a `name:type[@domain]`
    /// header) into `relation`. Takes the server's write lock.
    pub fn load_csv(
        &mut self,
        relation: &str,
        delimiter: WireDelimiter,
        data: Vec<u8>,
    ) -> Result<String, ClientError> {
        self.ok_request(&Request::LoadCsv {
            relation: relation.into(),
            delimiter,
            data,
        })
    }

    /// [`EhClient::load_csv`] from a client-side file (delimiter from
    /// the extension: `.tsv`/`.txt` → tab, else comma).
    pub fn load_csv_path(
        &mut self,
        relation: &str,
        path: impl AsRef<Path>,
    ) -> Result<String, ClientError> {
        let path = path.as_ref();
        let data = std::fs::read(path)?;
        self.load_csv(relation, WireDelimiter::for_path(path), data)
    }

    /// Ask the server to persist its database as an image at `path`,
    /// resolved (relative, no `..`) under the server's configured image
    /// directory; servers without one reject the request.
    pub fn save_image(&mut self, path: &str) -> Result<String, ClientError> {
        self.ok_request(&Request::SaveImage { path: path.into() })
    }

    /// Stored relations, in name order.
    pub fn list_relations(&mut self) -> Result<Vec<RelationInfo>, ClientError> {
        match self.round_trip(&Request::ListRelations)? {
            Response::Relations { entries } => Ok(entries),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Relations, got {other:?}"
            ))),
        }
    }

    /// Server + plan-cache statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Set a session-scoped engine option (`threads`, `scheduler`,
    /// `morsel`).
    pub fn set_option(&mut self, key: &str, value: &str) -> Result<String, ClientError> {
        self.ok_request(&Request::SetOption {
            key: key.into(),
            value: value.into(),
        })
    }

    /// Close the session gracefully.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.ok_request(&Request::Quit)?;
        Ok(())
    }
}
