//! Source regions: test code and explicit `lint:region` markers.
//!
//! Rules never fire inside test code. A test region is the full brace
//! extent of any item annotated `#[cfg(test)]` or `#[test]` — found by
//! token pattern, so a `#[cfg(test)]` in the middle of a file exempts
//! exactly its own item and nothing below it (the old CI grep gates
//! could only cut at the *last* trailing `mod tests`).
//!
//! Marker regions scope a rule to part of a file. In a file a rule
//! applies to with [`crate::rules::Scope::Marked`], only code between
//!
//! ```text
//! // lint:region-start(rule-name): why this region holds the invariant
//! ...
//! // lint:region-end(rule-name)
//! ```
//!
//! is checked — e.g. the allocation-free multiway kernels inside
//! `eh_set`'s intersect module, whose materializing entry points above
//! them allocate by design.

use crate::lexer::{Comment, Lexed, TokKind, Token};
use std::collections::HashMap;

/// Inclusive 1-based line ranges.
#[derive(Clone, Debug, Default)]
pub struct LineRanges {
    ranges: Vec<(u32, u32)>,
}

impl LineRanges {
    /// Add `[start, end]`.
    pub fn push(&mut self, start: u32, end: u32) {
        self.ranges.push((start, end));
    }

    /// True if `line` falls in any range.
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// True if no ranges were recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// All test-code line ranges in a lexed file.
pub fn test_regions(lexed: &Lexed<'_>) -> LineRanges {
    let toks = &lexed.tokens;
    let mut out = LineRanges::default();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(toks, i) {
            let start_line = toks[i].line;
            let end = item_extent(toks, after_attr);
            out.push(start_line, end);
        }
        i += 1;
    }
    out
}

/// If `toks[i..]` opens `#[cfg(test)]` or `#[test]`, return the index
/// just past the closing `]`.
fn match_test_attr(toks: &[Token<'_>], i: usize) -> Option<usize> {
    if !toks[i].is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let a = toks.get(i + 2)?;
    if a.is_ident("test") && toks.get(i + 3)?.is_punct(']') {
        return Some(i + 4);
    }
    if a.is_ident("cfg")
        && toks.get(i + 3)?.is_punct('(')
        && toks.get(i + 4)?.is_ident("test")
        && toks.get(i + 5)?.is_punct(')')
        && toks.get(i + 6)?.is_punct(']')
    {
        return Some(i + 7);
    }
    None
}

/// End line of the item starting at `toks[from]` (skipping further
/// attributes): the matching `}` of its first brace, or the terminating
/// `;` for brace-less items (`#[cfg(test)] mod tests;`).
fn item_extent(toks: &[Token<'_>], mut from: usize) -> u32 {
    // Skip stacked attributes between the test attr and the item.
    while from + 1 < toks.len() && toks[from].is_punct('#') && toks[from + 1].is_punct('[') {
        let mut depth = 0usize;
        let mut j = from + 1;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        from = j + 1;
    }
    let mut j = from;
    while j < toks.len() {
        if toks[j].is_punct(';') {
            return toks[j].line;
        }
        if toks[j].is_punct('{') {
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            return toks[j].line;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            break;
        }
        j += 1;
    }
    toks.last().map(|t| t.line).unwrap_or(0)
}

/// Per-rule marker regions, parsed from `lint:region-start(rule)` /
/// `lint:region-end(rule)` comments. An unclosed region runs to the
/// end of the file (`u32::MAX`).
pub fn marker_regions(lexed: &Lexed<'_>) -> HashMap<String, LineRanges> {
    let mut open: HashMap<String, u32> = HashMap::new();
    let mut out: HashMap<String, LineRanges> = HashMap::new();
    for c in &lexed.comments {
        if let Some(rule) = marker_arg(c, "lint:region-start(") {
            open.entry(rule).or_insert(c.end_line);
        } else if let Some(rule) = marker_arg(c, "lint:region-end(") {
            if let Some(start) = open.remove(&rule) {
                out.entry(rule).or_default().push(start, c.start_line);
            }
        }
    }
    for (rule, start) in open {
        out.entry(rule).or_default().push(start, u32::MAX);
    }
    out
}

/// Extract `rule` from a start-anchored `marker(rule)` comment (prose
/// mentioning a marker mid-sentence is not one).
fn marker_arg(c: &Comment<'_>, marker: &str) -> Option<String> {
    let rest = c.payload().strip_prefix(marker)?;
    let close = rest.find(')')?;
    Some(rest[..close].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_test_module_detected() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\n";
        let l = lex(src);
        let r = test_regions(&l);
        assert!(!r.contains(1));
        assert!(r.contains(2));
        assert!(r.contains(4));
        assert!(r.contains(5));
    }

    #[test]
    fn mid_file_test_item_exempts_only_itself() {
        let src = "#[test]\nfn t() { bad(); }\nfn prod() { fine(); }\n";
        let r = test_regions(&lex(src));
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod() {}\n";
        assert!(test_regions(&lex(src)).is_empty());
    }

    #[test]
    fn braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() {}\n";
        let r = test_regions(&lex(src));
        assert!(r.contains(2));
        assert!(!r.contains(3));
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[test]\n#[ignore]\nfn t() {\n  x();\n}\nfn p() {}\n";
        let r = test_regions(&lex(src));
        assert!(r.contains(4));
        assert!(!r.contains(6));
    }

    #[test]
    fn markers_scope_a_rule() {
        let src = "fn a() {}\n// lint:region-start(alloc-free): kernels\nfn k() {}\n// lint:region-end(alloc-free)\nfn b() {}\n";
        let m = marker_regions(&lex(src));
        let r = &m["alloc-free"];
        assert!(r.contains(3));
        assert!(!r.contains(1));
        assert!(!r.contains(5));
    }

    #[test]
    fn unclosed_marker_runs_to_eof() {
        let src = "// lint:region-start(alloc-free): tail\nfn k() {}\n";
        let m = marker_regions(&lex(src));
        assert!(m["alloc-free"].contains(9999));
    }
}
