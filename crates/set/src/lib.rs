//! Skew-aware set layouts and SIMD set-intersection kernels (paper §4).
//!
//! EmptyHeaded found that unoptimized set intersections account for ~95% of
//! the runtime of the generic worst-case-optimal join, so the execution
//! engine's core is a family of set *layouts* —
//!
//! * [`UintSet`] — a sorted array of 32-bit unsigned integers (sparse data),
//! * [`BitsetSet`] — a sequence of `(offset, 256-bit block)` pairs
//!   (dense data; paper Figure 4),
//! * [`BlockSet`] — a *composite* layout that picks uint or bitset per
//!   fixed-size block of the domain (paper §4.3 "Block Level"),
//!
//! — and a family of intersection kernels over every pair of layouts, all of
//! which preserve the **min property**: the cost of an intersection is
//! bounded by the size of the smaller input (within a constant factor given
//! by the block size), which is what makes Generic-Join worst-case optimal.
//!
//! Kernels come in SIMD (SSE/AVX2, runtime-detected) and scalar flavours so
//! the paper's `-S` ablation (Table 11) can be reproduced, and in
//! materializing and count-only variants (aggregate queries never
//! materialize, paper §5.3).

pub mod bitset;
pub mod block;
pub mod intersect;
pub mod layout;
pub mod oracle;
pub mod simd;
pub mod skew;
pub mod uint;

pub use bitset::BitsetSet;
pub use block::BlockSet;
pub use intersect::{
    count_all_into, intersect, intersect_all, intersect_all_into, intersect_count, IntersectAlgo,
    IntersectConfig, KernelStats, MultiwayScratch,
};
pub use layout::{choose_layout, LayoutKind, LayoutLevel, LayoutPolicy};
pub use uint::UintSet;

/// Number of bits per bitset block — the width of an AVX register
/// (paper §4.1, footnote 5: default block size 256).
pub const BLOCK_BITS: u32 = 256;

/// Number of 64-bit words per bitset block.
pub const BLOCK_WORDS: usize = (BLOCK_BITS as usize) / 64;

/// A 256-bit bitset block.
pub type Block = [u64; BLOCK_WORDS];

/// Block id containing value `v`.
#[inline]
pub fn block_of(v: u32) -> u32 {
    v / BLOCK_BITS
}

/// Bit index of value `v` within its block.
#[inline]
pub fn bit_of(v: u32) -> u32 {
    v % BLOCK_BITS
}

/// A set of u32 values in one of the three layouts.
///
/// This is the value type stored at every trie level; the layout is chosen
/// per set by the [`layout`] optimizer (set level is EmptyHeaded's default).
#[derive(Clone, Debug, PartialEq)]
pub enum Set {
    /// Sorted array of u32 (sparse).
    Uint(UintSet),
    /// Offset/block bitvector pairs (dense).
    Bitset(BitsetSet),
    /// Composite per-block hybrid.
    Block(BlockSet),
}

impl Set {
    /// Build an empty uint set.
    pub fn empty() -> Set {
        Set::Uint(UintSet::new(Vec::new()))
    }

    /// Build from sorted, deduplicated values using the given layout.
    pub fn from_sorted(values: &[u32], kind: LayoutKind) -> Set {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        match kind {
            LayoutKind::Uint => Set::Uint(UintSet::new(values.to_vec())),
            LayoutKind::Bitset => Set::Bitset(BitsetSet::from_sorted(values)),
            LayoutKind::Block => Set::Block(BlockSet::from_sorted(values)),
        }
    }

    /// Build from sorted values, letting the set-level optimizer pick.
    pub fn from_sorted_auto(values: &[u32]) -> Set {
        Set::from_sorted(values, choose_layout(values))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Set::Uint(s) => s.len(),
            Set::Bitset(s) => s.len(),
            Set::Block(s) => s.len(),
        }
    }

    /// True if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Layout tag of this set.
    pub fn kind(&self) -> LayoutKind {
        match self {
            Set::Uint(_) => LayoutKind::Uint,
            Set::Bitset(_) => LayoutKind::Bitset,
            Set::Block(_) => LayoutKind::Block,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            Set::Uint(s) => s.contains(v),
            Set::Bitset(s) => s.contains(v),
            Set::Block(s) => s.contains(v),
        }
    }

    /// Rank of `v` — its index in sorted order — if present. Trie levels use
    /// ranks to address child pointers and annotations uniformly across
    /// layouts.
    pub fn rank(&self, v: u32) -> Option<usize> {
        match self {
            Set::Uint(s) => s.rank(v),
            Set::Bitset(s) => s.rank(v),
            Set::Block(s) => s.rank(v),
        }
    }

    /// Rank lookup with a monotone cursor: when callers probe ascending
    /// values (the Generic-Join inner loops always do), `hint` carries the
    /// previous position so each probe searches only forward. `hint` is a
    /// layout-specific cursor — element index for uint, block index for
    /// bitset/composite — and must start at 0 for a fresh ascent.
    pub fn rank_hinted(&self, v: u32, hint: &mut usize) -> Option<usize> {
        match self {
            Set::Uint(s) => {
                let values = s.values();
                let start = (*hint).min(values.len());
                match uint::gallop_from(values, start, v) {
                    Ok(i) => {
                        *hint = i + 1;
                        Some(i)
                    }
                    Err(i) => {
                        *hint = i;
                        None
                    }
                }
            }
            Set::Bitset(s) => {
                let blk = v / BLOCK_BITS;
                let offsets = s.offsets();
                let mut i = (*hint).min(offsets.len());
                while i < offsets.len() && offsets[i] < blk {
                    i += 1;
                }
                *hint = i;
                if i < offsets.len() && offsets[i] == blk {
                    s.rank_in_block(i, v)
                } else {
                    None
                }
            }
            // The composite layout keeps its binary-search rank; block id
            // lookup dominates and stays cheap.
            Set::Block(s) => s.rank(v),
        }
    }

    /// Iterate values in ascending order.
    pub fn iter(&self) -> SetIter<'_> {
        match self {
            Set::Uint(s) => SetIter::Uint(s.values().iter()),
            Set::Bitset(s) => SetIter::Bitset(s.iter()),
            Set::Block(s) => SetIter::Block(s.iter()),
        }
    }

    /// Collect values to a sorted vector (test/debug helper).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Smallest value, if any.
    pub fn min(&self) -> Option<u32> {
        self.iter().next()
    }

    /// Largest value, if any.
    pub fn max(&self) -> Option<u32> {
        match self {
            Set::Uint(s) => s.values().last().copied(),
            Set::Bitset(s) => s.max(),
            Set::Block(s) => s.max(),
        }
    }

    /// Heap bytes used by the layout (drives Fig. 5/6 style tradeoffs).
    pub fn bytes(&self) -> usize {
        match self {
            Set::Uint(s) => s.bytes(),
            Set::Bitset(s) => s.bytes(),
            Set::Block(s) => s.bytes(),
        }
    }

    /// Value span `max - min + 1` (0 for empty sets). O(1) for every
    /// layout; the adaptive-layout observer accumulates spans to decide
    /// the fig. 5 uint↔bitset crossover from observed sets instead of
    /// build-time ones.
    pub fn span(&self) -> u64 {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => (hi - lo) as u64 + 1,
            _ => 0,
        }
    }

    /// Density of the set over its value range `[min, max]`.
    pub fn density(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let range = (self.max().unwrap() - self.min().unwrap()) as f64 + 1.0;
        n as f64 / range
    }
}

/// Iterator over any layout's values in ascending order.
pub enum SetIter<'a> {
    /// Uint layout iterator.
    Uint(std::slice::Iter<'a, u32>),
    /// Bitset layout iterator.
    Bitset(bitset::BitsetIter<'a>),
    /// Composite layout iterator.
    Block(block::BlockSetIter<'a>),
}

impl Iterator for SetIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        match self {
            SetIter::Uint(i) => i.next().copied(),
            SetIter::Bitset(i) => i.next(),
            SetIter::Block(i) => i.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u32> {
        vec![1, 5, 6, 7, 300, 301, 302, 303, 304, 1000]
    }

    #[test]
    fn roundtrip_all_layouts() {
        let v = sample();
        for kind in [LayoutKind::Uint, LayoutKind::Bitset, LayoutKind::Block] {
            let s = Set::from_sorted(&v, kind);
            assert_eq!(s.to_vec(), v, "{kind:?}");
            assert_eq!(s.len(), v.len());
            assert_eq!(s.min(), Some(1));
            assert_eq!(s.max(), Some(1000));
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn contains_and_rank_agree_across_layouts() {
        let v = sample();
        for kind in [LayoutKind::Uint, LayoutKind::Bitset, LayoutKind::Block] {
            let s = Set::from_sorted(&v, kind);
            for (i, &x) in v.iter().enumerate() {
                assert!(s.contains(x), "{kind:?} contains {x}");
                assert_eq!(s.rank(x), Some(i), "{kind:?} rank {x}");
            }
            for x in [0u32, 2, 299, 305, 999, 1001, 5000] {
                assert!(!s.contains(x), "{kind:?} !contains {x}");
                assert_eq!(s.rank(x), None);
            }
        }
    }

    #[test]
    fn empty_set_behaviour() {
        let e = Set::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        assert_eq!(e.to_vec(), Vec::<u32>::new());
        assert_eq!(e.density(), 0.0);
    }

    #[test]
    fn density() {
        let s = Set::from_sorted(&[0, 1, 2, 3], LayoutKind::Uint);
        assert!((s.density() - 1.0).abs() < 1e-12);
        let s = Set::from_sorted(&[0, 9], LayoutKind::Uint);
        assert!((s.density() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn auto_layout_dense_picks_bitset() {
        let dense: Vec<u32> = (0..1024).collect();
        let s = Set::from_sorted_auto(&dense);
        assert_eq!(s.kind(), LayoutKind::Bitset);
        let sparse: Vec<u32> = (0..64).map(|i| i * 10_000).collect();
        let s = Set::from_sorted_auto(&sparse);
        assert_eq!(s.kind(), LayoutKind::Uint);
    }

    #[test]
    fn block_helpers() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(255), 0);
        assert_eq!(block_of(256), 1);
        assert_eq!(bit_of(257), 1);
    }
}
