//! Cluster coordinator: scatter-gather distributed execution.
//!
//! A [`Cluster`] connects to N running `eh_server` processes (the shard
//! workers) and executes each query by scattering `ShardExec` frames —
//! one per worker, carrying the query text plus this worker's
//! `(shard_index, shard_count)` — then gathering the partial results and
//! merging them into a single answer.
//!
//! # Determinism
//!
//! The merge is *range-ordered*: workers partition the root node's
//! level-0 value list into contiguous index ranges (worker `k` owns
//! `[len·k/n, len·(k+1)/n)`), and the coordinator folds partials in
//! worker order. Per-shard results arrive sorted and deduplicated (the
//! engine's `finalize` guarantees that), so concatenating them in shard
//! order and running one stable `sorted_dedup` under the schema's ⊕
//! reproduces exactly the tuple sequence — and therefore exactly the
//! encoded bytes — that a single-process execution produces. Scalar
//! aggregates fold as `t₀ ⊕ t₁ ⊕ … ⊕ tₙ₋₁`, which equals the
//! single-process fold because each partial starts from the ⊕-identity.
//! For floating-point SUM this is bit-identical whenever the annotation
//! values are dyadic rationals (counts, integer-valued weights, powers
//! of two); arbitrary decimal weights may differ in the last ulp from a
//! differently-associated fold.
//!
//! Plans whose head applies a non-trivial expression on top of the
//! aggregate (e.g. PageRank's `0.15 + 0.85 * SUM(..)`) are not
//! ⊕-mergeable: each worker detects this, runs the *full* query, and
//! answers `sharded = false`; the coordinator then returns worker 0's
//! answer verbatim.

use crate::client::{ClientError, EhClient, ResultSet, ShardOutcome};
use crate::protocol::{RelationInfo, ServerStats, WireDelimiter};
use eh_obs::{MetricsRegistry, SlowQueryEntry, Span, Trace, TraceId, WorkCounters};
use std::time::Instant;

/// One worker's share of the last scattered query, for skew reporting.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Worker index (== shard index).
    pub worker: usize,
    /// Address the worker was connected at.
    pub addr: String,
    /// Whether the worker executed only its level-0 slice.
    pub sharded: bool,
    /// Level-0 values the worker owned (the *estimated* share basis).
    pub level0_values: u64,
    /// Server-side execution time in ns (the *observed* share basis).
    pub elapsed_ns: u64,
    /// Rows in the worker's partial result.
    pub rows: u64,
}

struct Worker {
    addr: String,
    client: EhClient,
}

/// A coordinator connection to a set of shard workers.
pub struct Cluster {
    workers: Vec<Worker>,
    metrics: MetricsRegistry,
    hist_names: Vec<String>,
    last: Vec<ShardReport>,
}

impl Cluster {
    /// Connect to every worker address in order. Worker `k` executes
    /// shard `k` of every scattered query, so the address order fixes
    /// the partition — keep it stable across coordinator restarts when
    /// comparing runs.
    pub fn connect(addrs: &[String]) -> Result<Cluster, ClientError> {
        assert!(!addrs.is_empty(), "cluster needs at least one worker");
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            workers.push(Worker {
                addr: addr.clone(),
                client: EhClient::connect(addr)?,
            });
        }
        let hist_names: Vec<String> = (0..addrs.len())
            .map(|k| format!("shard_exec_ns_worker{k}"))
            .collect();
        let hist_refs: Vec<&str> = hist_names.iter().map(|s| s.as_str()).collect();
        let metrics = MetricsRegistry::with(
            &["cluster_queries", "cluster_unsharded_queries"],
            &hist_refs,
        );
        Ok(Cluster {
            workers,
            metrics,
            hist_names,
            last: Vec::new(),
        })
    }

    /// Number of shard workers (the `n` in every scattered query).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker addresses, shard order.
    pub fn addrs(&self) -> Vec<&str> {
        self.workers.iter().map(|w| w.addr.as_str()).collect()
    }

    /// Per-shard skew data from the most recent [`Cluster::query`].
    pub fn last_reports(&self) -> &[ShardReport] {
        &self.last
    }

    /// Coordinator-side metrics: query counters plus one server-side
    /// latency histogram per worker.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Scatter `text` across all workers, gather the partials, and merge
    /// them into the single-process answer.
    pub fn query(&mut self, text: &str) -> Result<ResultSet, ClientError> {
        let n = self.workers.len() as u32;
        let mut outcomes: Vec<Option<Result<ShardOutcome, ClientError>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (k, (worker, slot)) in self.workers.iter_mut().zip(outcomes.iter_mut()).enumerate()
            {
                scope.spawn(move || {
                    *slot = Some(worker.client.shard_exec(text, k as u32, n, None));
                });
            }
        });
        self.metrics.inc("cluster_queries");
        let mut gathered = Vec::with_capacity(outcomes.len());
        for (k, slot) in outcomes.into_iter().enumerate() {
            let outcome = slot.expect("scatter thread wrote its slot")?;
            self.metrics
                .observe(&self.hist_names[k], outcome.elapsed_ns);
            gathered.push(outcome);
        }
        self.last = gathered
            .iter()
            .enumerate()
            .map(|(k, o)| ShardReport {
                worker: k,
                addr: self.workers[k].addr.clone(),
                sharded: o.sharded,
                level0_values: o.level0_values,
                elapsed_ns: o.elapsed_ns,
                rows: o.result.num_rows() as u64,
            })
            .collect();
        if let Some(pos) = gathered.iter().position(|o| !o.sharded) {
            // The plan was not ⊕-mergeable: every worker ran it in
            // full, so any one full answer *is* the answer.
            self.metrics.inc("cluster_unsharded_queries");
            let full = gathered.swap_remove(pos);
            return Ok(full.result);
        }
        merge_partials(gathered)
    }

    /// Scatter `text` with tracing on: the coordinator mints a
    /// [`TraceId`], every worker profiles its shard and ships its span
    /// tree home tagged with that id, and the trees are stitched into
    /// one trace under the coordinator's own scatter/merge spans.
    ///
    /// Each `worker k` lane starts at the coordinator-relative instant
    /// its request was sent and lasts the round trip; spans *inside* a
    /// lane keep their worker-relative offsets. No cross-host clock
    /// alignment is attempted — lanes locate workers on the
    /// coordinator's timeline, worker subtrees describe time spent
    /// within the request.
    pub fn trace(&mut self, text: &str) -> Result<(Trace, ResultSet), ClientError> {
        let n = self.workers.len() as u32;
        let trace_id = TraceId::mint().as_u64();
        let started = Instant::now();
        // (sent_ns, rtt_ns, outcome) per worker, written by its scatter thread.
        type LaneSlot = Option<(u64, u64, Result<ShardOutcome, ClientError>)>;
        let mut outcomes: Vec<LaneSlot> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (k, (worker, slot)) in self.workers.iter_mut().zip(outcomes.iter_mut()).enumerate()
            {
                let started = &started;
                scope.spawn(move || {
                    let sent_ns = started.elapsed().as_nanos() as u64;
                    let out = worker.client.shard_exec(text, k as u32, n, Some(trace_id));
                    let rtt_ns = (started.elapsed().as_nanos() as u64).saturating_sub(sent_ns);
                    *slot = Some((sent_ns, rtt_ns, out));
                });
            }
        });
        self.metrics.inc("cluster_queries");
        let scatter_ns = started.elapsed().as_nanos() as u64;
        let mut work = WorkCounters::default();
        let mut lanes = Vec::with_capacity(outcomes.len());
        let mut gathered = Vec::with_capacity(outcomes.len());
        for (k, slot) in outcomes.into_iter().enumerate() {
            let (sent_ns, rtt_ns, outcome) = slot.expect("scatter thread wrote its slot");
            let outcome = outcome?;
            self.metrics
                .observe(&self.hist_names[k], outcome.elapsed_ns);
            let mut lane = Span::new(format!("worker {k}"), sent_ns, rtt_ns)
                .with_value("level0_values", outcome.level0_values)
                .with_value("rows", outcome.result.num_rows() as u64);
            if let Some(trace) = &outcome.trace {
                work.merge(&trace.work);
                lane = lane.with_child(trace.root.clone());
            }
            lanes.push(lane);
            gathered.push(outcome);
        }
        self.last = gathered
            .iter()
            .enumerate()
            .map(|(k, o)| ShardReport {
                worker: k,
                addr: self.workers[k].addr.clone(),
                sharded: o.sharded,
                level0_values: o.level0_values,
                elapsed_ns: o.elapsed_ns,
                rows: o.result.num_rows() as u64,
            })
            .collect();
        let merge_start = started.elapsed().as_nanos() as u64;
        let result = match gathered.iter().position(|o| !o.sharded) {
            Some(pos) => {
                self.metrics.inc("cluster_unsharded_queries");
                gathered.swap_remove(pos).result
            }
            None => merge_partials(gathered)?,
        };
        let total_ns = started.elapsed().as_nanos() as u64;
        let mut scatter = Span::new("scatter", 0, scatter_ns);
        scatter.children = lanes;
        let root = Span::new("cluster", 0, total_ns)
            .with_value("workers", u64::from(n))
            .with_value("rows", result.num_rows() as u64)
            .with_child(scatter)
            .with_child(Span::new(
                "merge",
                merge_start,
                total_ns.saturating_sub(merge_start),
            ));
        Ok((
            Trace {
                trace_id,
                work,
                root,
            },
            result,
        ))
    }

    /// Broadcast a CSV load to every worker (each shard holds the full
    /// input relations; only execution is partitioned).
    pub fn load_csv(
        &mut self,
        relation: &str,
        delimiter: WireDelimiter,
        data: Vec<u8>,
    ) -> Result<String, ClientError> {
        let mut last = String::new();
        for worker in &mut self.workers {
            last = worker.client.load_csv(relation, delimiter, data.clone())?;
        }
        Ok(last)
    }

    /// Broadcast a session option to every worker.
    pub fn set_option(&mut self, key: &str, value: &str) -> Result<String, ClientError> {
        let mut last = String::new();
        for worker in &mut self.workers {
            last = worker.client.set_option(key, value)?;
        }
        Ok(last)
    }

    /// Stored relations, from worker 0 (all workers hold identical data).
    pub fn list_relations(&mut self) -> Result<Vec<RelationInfo>, ClientError> {
        self.workers[0].client.list_relations()
    }

    /// Server statistics, from worker 0.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.workers[0].client.stats()
    }

    /// Every worker's recent slow-query entries (newest first), in
    /// shard order. Each worker keeps its own ring, so entries carry
    /// the shard's local view tagged with the coordinator's trace ids.
    pub fn slow_log(
        &mut self,
        limit: u32,
    ) -> Result<Vec<(usize, Vec<SlowQueryEntry>)>, ClientError> {
        let mut out = Vec::with_capacity(self.workers.len());
        for (k, worker) in self.workers.iter_mut().enumerate() {
            out.push((k, worker.client.slow_log(limit)?));
        }
        Ok(out)
    }

    /// Close every worker session gracefully.
    pub fn quit(self) -> Result<(), ClientError> {
        for worker in self.workers {
            worker.client.quit()?;
        }
        Ok(())
    }
}

/// Fold sharded partials, in shard order, into the single-process
/// answer. Every partial arrives sorted + deduplicated; the merged
/// buffer re-sorts (stably) and combines duplicate keys under the
/// result schema's ⊕, which for contiguous level-0 ranges reproduces
/// the single-process tuple sequence exactly.
fn merge_partials(outcomes: Vec<ShardOutcome>) -> Result<ResultSet, ClientError> {
    let mut iter = outcomes.into_iter();
    let first = iter
        .next()
        .expect("merge_partials requires at least one shard");
    let mut merged = first.result.batch().clone();
    for outcome in iter {
        let batch = outcome.result.batch();
        if batch.schema != merged.schema {
            return Err(ClientError::Protocol(format!(
                "shard schema mismatch: {:?} vs {:?}",
                batch.schema.name, merged.schema.name
            )));
        }
        merged.tuples.append(&batch.tuples);
    }
    let combine = merged.schema.combine;
    merged.tuples = merged.tuples.sorted_dedup(combine);
    ResultSet::from_batch(merged)
}
