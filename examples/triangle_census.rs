//! Triangle counting across the paper's dataset analogs, EmptyHeaded vs
//! the baseline engine classes (a small-scale preview of paper Table 5).
//!
//! ```sh
//! cargo run --release --example triangle_census
//! ```

use emptyheaded::{algorithms, baselines, graph, Config};
use std::time::Instant;

fn main() {
    let scale = 0.05; // keep the example snappy; the bench harness scales up
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "dataset", "triangles", "EH[s]", "EH-R[s]", "merge[s]", "hash[s]", "pairwise[s]"
    );
    for spec in graph::paper_datasets() {
        let g = spec.generate_scaled(scale);
        let pruned = g.prune_by_degree();
        let csr = pruned.to_csr();

        let t0 = Instant::now();
        let eh = algorithms::triangle_count(&pruned, Config::default()).unwrap();
        let t_eh = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let eh_r = algorithms::triangle_count(&pruned, Config::uint_only()).unwrap();
        let t_eh_r = t0.elapsed().as_secs_f64();
        assert_eq!(eh, eh_r);

        let t0 = Instant::now();
        let merge = baselines::lowlevel::triangle_count_merge(&csr);
        let t_merge = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let hash = baselines::lowlevel::triangle_count_hash(&csr);
        let t_hash = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let pair = baselines::pairwise::triangle_count(&pruned.edges);
        let t_pair = t0.elapsed().as_secs_f64();

        assert_eq!(eh, merge);
        assert_eq!(eh, hash);
        assert_eq!(eh, pair);
        println!(
            "{:<12} {:>9} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            spec.name, eh, t_eh, t_eh_r, t_merge, t_hash, t_pair
        );
    }
}
