//! `eh_shell` — the interactive front door.
//!
//! One binary, four modes:
//!
//! * **embedded** (default): an in-process [`Database`] with its own
//!   [`PlanCache`] — the full query surface with no server.
//! * **remote** (`--connect ADDR`): every statement goes over the wire
//!   to a running `eh_server`.
//! * **cluster** (`--cluster ADDR`, repeatable): a scatter-gather
//!   coordinator over N shard workers — queries partition the root
//!   node's level-0 range across the workers and merge the partials
//!   deterministically ([`crate::cluster`]); `\cluster` shows topology,
//!   per-worker latency, and the last query's estimated-vs-observed
//!   shard skew.
//! * **server** (`--serve ADDR`): binds the listener(s) and serves
//!   until killed.
//!
//! Statements are `.`-terminated queries or backslash commands
//! (`\l file [name]`, `\d`, `\timing`, `\prepare name query`,
//! `\exec name`, `\explain query`, `\trace query`, `\slow [n]`,
//! `\set key value`, `\stats`, `\save path`, `\q`),
//! separated by `;` or newlines; a query's own `;`/`(;w:long)`
//! punctuation is kept intact because a query statement only ends at
//! its final `.`. A multi-rule program is one statement as long as it
//! stays on one line (rules separated by spaces after the `.`); a
//! newline after a `.` ends the statement. Non-interactive driving (`-c 'stmts'` or piped
//! stdin) prints exactly what the interactive loop prints, so CI can
//! diff embedded output against remote output — both render results
//! through the same [`ResultBatch`] path.

use crate::cache::PlanCache;
use crate::client::{ClientError, EhClient, StatementHandle};
use crate::cluster::{Cluster, ShardReport};
use crate::protocol::{ServerStats, WireDelimiter};
use crate::server::{Server, ServerOptions};
use crate::session::{apply_option, batch_from_result};
use eh_core::{profile_to_span, Database, Prepared, Trace, TraceId};
use eh_obs::{prometheus_line, SlowQueryEntry, SlowQueryLog};
use eh_semiring::DynValue;
use eh_storage::wire::ResultBatch;
use std::collections::HashMap;
use std::io::{BufRead, IsTerminal, Write};
use std::sync::Arc;
use std::time::Instant;

const HELP: &str = "\
eh_shell — EmptyHeaded interactive shell

USAGE:
  eh_shell [OPTIONS]                 embedded REPL (in-process database)
  eh_shell --connect ADDR [OPTIONS]  drive a running eh_server
  eh_shell --cluster A1 --cluster A2 ...  coordinate shard workers
  eh_shell --serve ADDR [--serve ADDR2 ...]  run the server

OPTIONS:
  --connect ADDR   connect to a server (unix:/path | tcp:host:port | host:port)
  --cluster ADDR   add a shard worker (repeatable); queries scatter across
                   all workers and gather to one deterministic answer
  --serve ADDR     bind and serve (repeatable; unix:/path and/or host:port)
  --db PATH        open this database image on startup (embedded/serve)
  --image-dir DIR  let clients \\save images (relative paths) under DIR
                   (server mode; without it remote \\save is rejected)
  -c 'STMTS'       run statements non-interactively, then exit
  --threads N      engine worker threads (0 = auto)
  --json           \\metrics prints a Prometheus-style text exposition
  --help           this text

STATEMENTS (separated by ';' or newline):
  Rule(x,y) :- Edge(x,y).        run a query (read-only)
  A(x) :- E(x,y). B(y) :- A(y).  multi-rule program: keep it on ONE line
                                 (later rules see earlier heads)
  \\l FILE [NAME]                 load a CSV/TSV (header line drives types)
  \\d                             list relations
  \\prepare NAME QUERY            compile once through the plan cache
  \\exec NAME                     run a prepared statement
  \\explain QUERY                 show the compiled plan (embedded: order, cost,
                                 loops; remote/cluster: profiled span tree)
  \\trace QUERY                   run profiled and print the span tree
                                 (cluster: one stitched trace, per-worker lanes)
  \\slow [N]                      recent slow-query log entries (default 10;
                                 threshold via \\set slow_ms MS)
  \\set KEY VALUE                 threads | scheduler | morsel | slow_ms
  \\timing                        toggle per-statement timing
  \\stats                         server / plan-cache statistics
  \\metrics [--json]              frame latency / byte-count metrics
                                 (--json: Prometheus-style exposition)
  \\save PATH                     save a database image
  \\cluster                       cluster topology, per-worker latency,
                                 last-query shard skew (cluster mode)
  \\q                             quit
";

/// Parsed command line.
struct Opts {
    connect: Option<String>,
    cluster: Vec<String>,
    serve: Vec<String>,
    db_image: Option<String>,
    image_dir: Option<String>,
    commands: Option<String>,
    threads: Option<usize>,
    json: bool,
}

fn parse_opts(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        connect: None,
        cluster: Vec::new(),
        serve: Vec::new(),
        db_image: None,
        image_dir: None,
        commands: None,
        threads: None,
        json: false,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--connect" => opts.connect = Some(value(&mut i, "--connect")?),
            "--cluster" => opts.cluster.push(value(&mut i, "--cluster")?),
            "--serve" => opts.serve.push(value(&mut i, "--serve")?),
            "--db" => opts.db_image = Some(value(&mut i, "--db")?),
            "--image-dir" => opts.image_dir = Some(value(&mut i, "--image-dir")?),
            "-c" => opts.commands = Some(value(&mut i, "-c")?),
            "--threads" => {
                let v = value(&mut i, "--threads")?;
                opts.threads = Some(v.parse().map_err(|_| format!("bad thread count '{v}'"))?);
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    if opts.connect.is_some() && !opts.serve.is_empty() {
        return Err("--connect and --serve are mutually exclusive".into());
    }
    if !opts.cluster.is_empty() && (opts.connect.is_some() || !opts.serve.is_empty()) {
        return Err("--cluster is exclusive with --connect and --serve".into());
    }
    if opts.image_dir.is_some() && opts.serve.is_empty() {
        return Err("--image-dir only applies to server mode (--serve)".into());
    }
    Ok(Some(opts))
}

/// Split input into statements. A statement is complete at a `;` or
/// newline boundary once it either is a backslash command (except
/// `\prepare` and `\trace`, which carry a query) or ends with `.` — so
/// the `;` inside `C(;w:long) :- ...; w=<<COUNT(*)>>.` never splits a
/// query. Returns complete statements plus the unfinished remainder.
fn split_partial(input: &str) -> (Vec<String>, String) {
    let mut out = Vec::new();
    let mut acc = String::new();
    for ch in input.chars() {
        if ch == ';' || ch == '\n' {
            let t = acc.trim();
            let is_meta = t.starts_with('\\');
            let wants_query = t.starts_with("\\prepare") || t.starts_with("\\trace");
            let complete = if wants_query || !is_meta {
                t.ends_with('.')
            } else {
                !t.is_empty()
            };
            if complete {
                out.push(t.to_string());
                acc.clear();
            } else if ch == ';' {
                acc.push(';');
            } else {
                acc.push(' ');
            }
        } else {
            acc.push(ch);
        }
    }
    (out, acc)
}

/// [`split_partial`] with the trailing remainder flushed as a final
/// statement (end of input ends the last statement).
fn split_statements(input: &str) -> Vec<String> {
    let (mut stmts, rest) = split_partial(input);
    let rest = rest.trim();
    if !rest.is_empty() {
        stmts.push(rest.to_string());
    }
    stmts
}

/// Render a remote failure the way the embedded backend would: the
/// server already sends the engine's own message, so strip the client
/// wrapper's "server error: " prefix — embedded and remote runs of the
/// same failing statement must print identical lines (the CI smoke
/// diffs them).
fn remote_err(e: ClientError) -> String {
    match e {
        ClientError::Server(m) => m,
        other => other.to_string(),
    }
}

fn fmt_dyn(v: &DynValue) -> String {
    match v {
        DynValue::U64(x) => x.to_string(),
        DynValue::F64(x) => x.to_string(),
    }
}

/// Render a result batch the same way for embedded and remote results
/// (so the two modes diff clean in CI).
fn render_batch(batch: &ResultBatch) -> String {
    let mut out = String::new();
    out.push_str(&batch.schema.to_string());
    out.push('\n');
    if batch.tuples.arity() == 0 {
        if let Some(v) = batch.scalar() {
            out.push_str(&format!("{}\n(scalar)\n", fmt_dyn(&v)));
            return out;
        }
        out.push_str("(empty)\n");
        return out;
    }
    let rows = batch.typed_rows();
    let annots = batch.annotations();
    for (i, row) in rows.iter().enumerate() {
        let mut line = row
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\t");
        if let Some(a) = annots {
            line.push('\t');
            line.push_str(&fmt_dyn(&a[i]));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!("({} rows)\n", rows.len()));
    out
}

/// An embedded prepared statement: plan + the epoch/text needed to
/// re-prepare transparently if the catalog moves (same contract as a
/// server session).
struct EmbeddedStmt {
    epoch: u64,
    text: String,
    plan: Arc<Prepared>,
}

enum Backend {
    Embedded {
        db: Box<Database>,
        cache: PlanCache,
        statements: HashMap<String, EmbeddedStmt>,
        // The in-process analogue of the server's slow-query ring:
        // embedded queries record here, `\slow` reads it back.
        slowlog: SlowQueryLog,
    },
    Remote {
        client: EhClient,
        statements: HashMap<String, StatementHandle>,
    },
    Cluster {
        cluster: Cluster,
        // Cluster prepare is client-side: the statement name maps to its
        // query text, and \exec scatters the text (every worker still
        // compiles through its own shared plan cache, so re-execution is
        // a cache hit on each shard).
        statements: HashMap<String, String>,
    },
}

impl Backend {
    fn query(&mut self, text: &str) -> Result<String, String> {
        match self {
            Backend::Embedded {
                db, cache, slowlog, ..
            } => {
                // Mirror the server: preparable single rules go through
                // the plan cache (cached texts skip parsing entirely);
                // programs/recursion take the read-only path.
                let started = Instant::now();
                let result = match cache.get_preparable(db, text).map_err(|e| e.to_string())? {
                    Some(plan) => plan.execute(db).map_err(|e| e.to_string())?,
                    None => db.query_ref(text).map_err(|e| e.to_string())?,
                };
                slowlog.observe(SlowQueryEntry {
                    trace_id: 0,
                    query: text.to_string(),
                    rows: result.rows().len() as u64,
                    elapsed_ns: started.elapsed().as_nanos() as u64,
                    sharded: false,
                    hot_span: "-".into(),
                });
                let batch = batch_from_result(db, &result);
                Ok(render_batch(&batch))
            }
            Backend::Remote { client, .. } => {
                let rs = client.query(text).map_err(remote_err)?;
                Ok(render_batch(rs.batch()))
            }
            Backend::Cluster { cluster, .. } => {
                let rs = cluster.query(text).map_err(remote_err)?;
                Ok(render_batch(rs.batch()))
            }
        }
    }

    fn prepare(&mut self, name: &str, text: &str) -> Result<String, String> {
        match self {
            Backend::Embedded {
                db,
                cache,
                statements,
                ..
            } => {
                let (plan, hit) = cache.get_or_prepare(db, text).map_err(|e| e.to_string())?;
                statements.insert(
                    name.to_string(),
                    EmbeddedStmt {
                        epoch: db.epoch(),
                        text: text.to_string(),
                        plan,
                    },
                );
                Ok(format!(
                    "prepared {name} ({})\n",
                    if hit { "plan cache hit" } else { "compiled" }
                ))
            }
            Backend::Remote { client, statements } => {
                let handle = client.prepare(text).map_err(remote_err)?;
                statements.insert(name.to_string(), handle);
                Ok(format!(
                    "prepared {name} ({})\n",
                    if handle.cache_hit {
                        "plan cache hit"
                    } else {
                        "compiled"
                    }
                ))
            }
            Backend::Cluster { statements, .. } => {
                statements.insert(name.to_string(), text.to_string());
                Ok(format!("prepared {name} (cluster: compiled per-shard)\n"))
            }
        }
    }

    fn exec(&mut self, name: &str) -> Result<String, String> {
        match self {
            Backend::Embedded {
                db,
                cache,
                statements,
                ..
            } => {
                let stmt = statements
                    .get_mut(name)
                    .ok_or_else(|| format!("no prepared statement '{name}'"))?;
                if stmt.epoch != db.epoch() {
                    let (plan, _) = cache
                        .get_or_prepare(db, &stmt.text)
                        .map_err(|e| e.to_string())?;
                    stmt.plan = plan;
                    stmt.epoch = db.epoch();
                }
                let result = stmt.plan.execute(db).map_err(|e| e.to_string())?;
                let batch = batch_from_result(db, &result);
                Ok(render_batch(&batch))
            }
            Backend::Remote { client, statements } => {
                let handle = *statements
                    .get(name)
                    .ok_or_else(|| format!("no prepared statement '{name}'"))?;
                let rs = client.exec(handle).map_err(remote_err)?;
                Ok(render_batch(rs.batch()))
            }
            Backend::Cluster {
                cluster,
                statements,
            } => {
                let text = statements
                    .get(name)
                    .ok_or_else(|| format!("no prepared statement '{name}'"))?
                    .clone();
                let rs = cluster.query(&text).map_err(remote_err)?;
                Ok(render_batch(rs.batch()))
            }
        }
    }

    fn load(&mut self, path: &str, relation: &str) -> Result<String, String> {
        match self {
            Backend::Embedded { db, .. } => {
                let report = db.load_csv(relation, path).map_err(|e| e.to_string())?;
                Ok(format!(
                    "loaded {} rows into {relation}{}\n",
                    report.rows,
                    if report.skipped > 0 {
                        format!(" ({} skipped)", report.skipped)
                    } else {
                        String::new()
                    }
                ))
            }
            Backend::Remote { client, .. } => {
                let msg = client.load_csv_path(relation, path).map_err(remote_err)?;
                Ok(format!("{msg}\n"))
            }
            Backend::Cluster { cluster, .. } => {
                let data = std::fs::read(path).map_err(|e| e.to_string())?;
                let delim = WireDelimiter::for_path(std::path::Path::new(path));
                let msg = cluster
                    .load_csv(relation, delim, data)
                    .map_err(remote_err)?;
                Ok(format!("{msg}\n"))
            }
        }
    }

    fn list(&mut self) -> Result<String, String> {
        let mut out = String::new();
        match self {
            Backend::Embedded { db, .. } => {
                let mut names: Vec<String> = db.catalog().names().map(str::to_string).collect();
                names.sort();
                for name in names {
                    if let Some(rel) = db.relation(&name) {
                        let schema = db
                            .storage()
                            .schema(&name)
                            .map(|s| s.to_string())
                            .unwrap_or_else(|| name.clone());
                        out.push_str(&format!("{name}\trows={}\t{schema}\n", rel.len()));
                    }
                }
            }
            Backend::Remote { client, .. } => {
                for e in client.list_relations().map_err(remote_err)? {
                    out.push_str(&format!("{}\trows={}\t{}\n", e.name, e.rows, e.schema));
                }
            }
            Backend::Cluster { cluster, .. } => {
                for e in cluster.list_relations().map_err(remote_err)? {
                    out.push_str(&format!("{}\trows={}\t{}\n", e.name, e.rows, e.schema));
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no relations)\n");
        }
        Ok(out)
    }

    fn explain(&mut self, query: &str) -> Result<String, String> {
        match self {
            Backend::Embedded { db, .. } => db.explain(query).map_err(|e| e.to_string()),
            // The plan text lives server-side, but the Trace frame
            // carries the wire-encoded profile of a profiled run — so
            // remote \explain shows where a real execution spent its
            // time instead of erroring.
            Backend::Remote { client, .. } => {
                let outcome = client.trace_exec(query, false).map_err(remote_err)?;
                match outcome.profile {
                    Some(p) => Ok(format!(
                        "profiled remotely ({} rows):\n{}",
                        outcome.result.num_rows(),
                        profile_to_span("query", &p).render()
                    )),
                    None => Ok(format!(
                        "no profile: plan executes unprofiled (recursive rule); {} rows\n",
                        outcome.result.num_rows()
                    )),
                }
            }
            // A cluster has no client-side planner, but it can profile:
            // scatter the query and report how the level-0 range split
            // (estimated share) against where the time actually went
            // (observed share).
            Backend::Cluster { cluster, .. } => {
                let rs = cluster.query(query).map_err(remote_err)?;
                let mut out = format!(
                    "distributed execution over {} shard(s), {} result row(s)\n",
                    cluster.num_workers(),
                    rs.num_rows()
                );
                out.push_str(&render_skew(cluster.last_reports()));
                Ok(out)
            }
        }
    }

    /// `\trace QUERY`: run profiled and print the span tree. Cluster
    /// mode scatters with a minted trace id and prints the stitched
    /// trace — one `worker k` lane per shard, each holding that
    /// worker's span tree.
    fn trace(&mut self, text: &str) -> Result<String, String> {
        const UNPROFILED: &str = "no trace: plan executes unprofiled (recursive rule)";
        match self {
            Backend::Embedded {
                db, cache, slowlog, ..
            } => {
                let trace_id = TraceId::mint().as_u64();
                let cfg = db.config().with_profile(true);
                let started = Instant::now();
                let result = match cache.get_preparable(db, text).map_err(|e| e.to_string())? {
                    Some(plan) => plan.execute_with(db, &cfg).map_err(|e| e.to_string())?,
                    None => db.query_ref_with(text, &cfg).map_err(|e| e.to_string())?,
                };
                let elapsed_ns = started.elapsed().as_nanos() as u64;
                let rows = result.rows().len() as u64;
                let (out, hot_span) = match result.profile() {
                    Some(p) => {
                        let trace = Trace {
                            trace_id,
                            work: p.work,
                            root: profile_to_span("query", p),
                        };
                        (
                            format!("{}({rows} rows)\n", trace.render()),
                            trace.root.hottest_leaf(),
                        )
                    }
                    None => (format!("{UNPROFILED}\n({rows} rows)\n"), "-".to_string()),
                };
                slowlog.observe(SlowQueryEntry {
                    trace_id,
                    query: text.to_string(),
                    rows,
                    elapsed_ns,
                    sharded: false,
                    hot_span,
                });
                Ok(out)
            }
            Backend::Remote { client, .. } => {
                let outcome = client.trace_exec(text, true).map_err(remote_err)?;
                let rows = outcome.result.num_rows();
                match outcome.trace {
                    Some(trace) => Ok(format!("{}({rows} rows)\n", trace.render())),
                    None => Ok(format!("{UNPROFILED}\n({rows} rows)\n")),
                }
            }
            Backend::Cluster { cluster, .. } => {
                let (trace, rs) = cluster.trace(text).map_err(remote_err)?;
                Ok(format!("{}({} rows)\n", trace.render(), rs.num_rows()))
            }
        }
    }

    /// `\slow [N]`: the most recent slow-query entries, newest first.
    fn slow(&mut self, limit: usize) -> Result<String, String> {
        fn lines(entries: &[SlowQueryEntry]) -> String {
            if entries.is_empty() {
                "(no slow queries)\n".into()
            } else {
                entries.iter().map(|e| e.render() + "\n").collect()
            }
        }
        match self {
            Backend::Embedded { slowlog, .. } => Ok(lines(&slowlog.recent(limit))),
            Backend::Remote { client, .. } => {
                Ok(lines(&client.slow_log(limit as u32).map_err(remote_err)?))
            }
            Backend::Cluster { cluster, .. } => {
                let mut out = String::new();
                for (k, entries) in cluster.slow_log(limit as u32).map_err(remote_err)? {
                    out.push_str(&format!("worker {k}:\n"));
                    for line in lines(&entries).lines() {
                        out.push_str("  ");
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                Ok(out)
            }
        }
    }

    fn stats(&mut self) -> Result<String, String> {
        match self {
            Backend::Embedded { db, cache, .. } => Ok(format!(
                "embedded epoch={} relations={} plan_cache hits={} misses={} \
                 invalidations={} entries={}/{}\n",
                db.epoch(),
                db.catalog().names().count(),
                cache.hits(),
                cache.misses(),
                cache.invalidations(),
                cache.len(),
                cache.capacity(),
            )),
            Backend::Cluster { cluster, .. } => {
                let s = cluster.stats().map_err(remote_err)?;
                Ok(format!(
                    "cluster workers={} queries={} unsharded={}\n\
                     worker0 epoch={} relations={} queries={} plan_cache hits={} misses={}\n",
                    cluster.num_workers(),
                    cluster.metrics().get("cluster_queries"),
                    cluster.metrics().get("cluster_unsharded_queries"),
                    s.epoch,
                    s.relations,
                    s.queries,
                    s.cache_hits,
                    s.cache_misses,
                ))
            }
            Backend::Remote { client, .. } => {
                let s = client.stats().map_err(remote_err)?;
                Ok(format!(
                    "server epoch={} relations={} sessions={}/{} queries={} exec_prepared={} \
                     plan_cache hits={} misses={} invalidations={} entries={}/{}\n",
                    s.epoch,
                    s.relations,
                    s.sessions_active,
                    s.sessions_total,
                    s.queries,
                    s.exec_prepared,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_invalidations,
                    s.cache_entries,
                    s.cache_capacity,
                ))
            }
        }
    }

    /// `\metrics`: the server's metrics surface. Embedded mode reports
    /// the in-process analogue (epoch, relations, plan cache) with no
    /// frame extension — there is no wire to measure.
    fn metrics(&mut self, json: bool) -> Result<String, String> {
        let stats = match self {
            Backend::Embedded { db, cache, .. } => ServerStats {
                epoch: db.epoch(),
                relations: db.catalog().names().count() as u64,
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
                cache_invalidations: cache.invalidations(),
                cache_entries: cache.len() as u64,
                cache_capacity: cache.capacity() as u64,
                ..Default::default()
            },
            Backend::Remote { client, .. } => client.stats().map_err(remote_err)?,
            Backend::Cluster { cluster, .. } => cluster.stats().map_err(remote_err)?,
        };
        Ok(if json {
            render_metrics_prometheus(&stats)
        } else {
            render_metrics_text(&stats)
        })
    }

    /// `\cluster`: topology, coordinator counters, per-worker latency,
    /// and the last scattered query's shard-skew table.
    fn cluster_status(&mut self) -> Result<String, String> {
        let Backend::Cluster { cluster, .. } = self else {
            return Err("\\cluster needs cluster mode (--cluster ADDR ...)".into());
        };
        let mut out = format!(
            "cluster: {} worker(s), {} scattered quer{}, {} unsharded\n",
            cluster.num_workers(),
            cluster.metrics().get("cluster_queries"),
            if cluster.metrics().get("cluster_queries") == 1 {
                "y"
            } else {
                "ies"
            },
            cluster.metrics().get("cluster_unsharded_queries"),
        );
        out.push_str("worker  addr                          count    mean_ms     p95_ms\n");
        for (k, addr) in cluster.addrs().iter().enumerate() {
            let name = format!("shard_exec_ns_worker{k}");
            let h = cluster
                .metrics()
                .histogram(&name)
                .map(|h| h.snapshot())
                .unwrap_or_default();
            out.push_str(&format!(
                "{k:>6}  {addr:<28}  {:>5} {:>10.3} {:>10.3}\n",
                h.count,
                h.mean() / 1e6,
                h.percentile(0.95) as f64 / 1e6,
            ));
        }
        out.push_str("last query shard skew:\n");
        out.push_str(&render_skew(cluster.last_reports()));
        Ok(out)
    }

    fn set_option(&mut self, key: &str, val: &str) -> Result<String, String> {
        match self {
            // Same parser the server sessions use, so both modes accept
            // and confirm options with identical text. `slow_ms` is
            // intercepted exactly like a server session intercepts it:
            // it tunes the slow-query log, not the engine config.
            Backend::Embedded { db, slowlog, .. } => {
                if key == "slow_ms" {
                    return match val.parse::<u64>() {
                        Ok(ms) => {
                            slowlog.set_threshold_ns(ms.saturating_mul(1_000_000));
                            Ok(format!("slow_ms = {ms}\n"))
                        }
                        Err(_) => Err(format!("slow_ms wants a number, got '{val}'")),
                    };
                }
                let msg = apply_option(db.config_mut(), key, val)?;
                Ok(format!("{msg}\n"))
            }
            Backend::Remote { client, .. } => {
                let msg = client.set_option(key, val).map_err(remote_err)?;
                Ok(format!("{msg}\n"))
            }
            Backend::Cluster { cluster, .. } => {
                let msg = cluster.set_option(key, val).map_err(remote_err)?;
                Ok(format!("{msg}\n"))
            }
        }
    }

    fn save(&mut self, path: &str) -> Result<String, String> {
        match self {
            Backend::Embedded { db, .. } => {
                db.save(path).map_err(|e| e.to_string())?;
                Ok(format!("saved image to {path}\n"))
            }
            Backend::Remote { client, .. } => {
                let msg = client.save_image(path).map_err(remote_err)?;
                Ok(format!("{msg}\n"))
            }
            Backend::Cluster { .. } => {
                Err("\\save is per-worker; --connect to one worker to save its image".into())
            }
        }
    }
}

/// The estimated-vs-observed shard-skew table: the coordinator's range
/// split predicts each worker's share by level-0 value count; the
/// per-shard server-side latency shows where the time actually went.
fn render_skew(reports: &[ShardReport]) -> String {
    if reports.is_empty() {
        return "(no scattered query yet)\n".into();
    }
    let total_vals: u64 = reports.iter().map(|r| r.level0_values).sum();
    let total_ns: u64 = reports.iter().map(|r| r.elapsed_ns).sum();
    let mut out = String::from("shard  level0   est%       ms   obs%    rows\n");
    for r in reports {
        let est = if total_vals == 0 {
            0.0
        } else {
            100.0 * r.level0_values as f64 / total_vals as f64
        };
        let obs = if total_ns == 0 {
            0.0
        } else {
            100.0 * r.elapsed_ns as f64 / total_ns as f64
        };
        out.push_str(&format!(
            "{:>5}  {:>6}  {:>5.1} {:>8.3}  {:>5.1}  {:>6}{}\n",
            r.worker,
            r.level0_values,
            est,
            r.elapsed_ns as f64 / 1e6,
            obs,
            r.rows,
            if r.sharded {
                ""
            } else {
                "  (full: plan not mergeable)"
            },
        ));
    }
    out
}

/// Human-readable `\metrics` rendering: counter lines plus a per-frame
/// latency table (count, mean, coarse p95) from the protocol-2 `Stats`
/// extension when the backend carries one.
fn render_metrics_text(s: &ServerStats) -> String {
    let mut out = format!(
        "epoch={} relations={} sessions={}/{} queries={} exec_prepared={}\n\
         plan_cache hits={} misses={} invalidations={} entries={}/{}\n",
        s.epoch,
        s.relations,
        s.sessions_active,
        s.sessions_total,
        s.queries,
        s.exec_prepared,
        s.cache_hits,
        s.cache_misses,
        s.cache_invalidations,
        s.cache_entries,
        s.cache_capacity,
    );
    let Some(ext) = &s.ext else {
        out.push_str("(no frame metrics: embedded backend or protocol-1 server)\n");
        return out;
    };
    out.push_str(&format!(
        "bytes in={} out={}\n",
        ext.bytes_in, ext.bytes_out
    ));
    out.push_str("frame            count    mean_us     p95_us\n");
    for f in &ext.frames {
        if f.count == 0 {
            continue;
        }
        let h = f.histogram();
        out.push_str(&format!(
            "{:<16} {:>5} {:>10.1} {:>10}\n",
            f.name,
            f.count,
            h.mean() / 1e3,
            h.percentile(0.95) / 1000,
        ));
    }
    out
}

/// Prometheus-style text exposition of the same stats (`--json` mode):
/// one `name{label} value` line per metric, histogram buckets with
/// nanosecond `le` upper edges.
fn render_metrics_prometheus(s: &ServerStats) -> String {
    let mut out = String::new();
    for (name, v) in [
        ("epoch", s.epoch),
        ("relations", s.relations),
        ("sessions_total", s.sessions_total),
        ("sessions_active", s.sessions_active),
        ("queries_total", s.queries),
        ("exec_prepared_total", s.exec_prepared),
        ("plan_cache_hits", s.cache_hits),
        ("plan_cache_misses", s.cache_misses),
        ("plan_cache_invalidations", s.cache_invalidations),
        ("plan_cache_entries", s.cache_entries),
        ("plan_cache_capacity", s.cache_capacity),
    ] {
        prometheus_line(&mut out, "eh_", name, v);
    }
    if let Some(ext) = &s.ext {
        prometheus_line(&mut out, "eh_", "bytes_in_total", ext.bytes_in);
        prometheus_line(&mut out, "eh_", "bytes_out_total", ext.bytes_out);
        for f in &ext.frames {
            let label = format!("{{frame=\"{}\"}}", f.name);
            prometheus_line(&mut out, "eh_", &format!("frame_ns_count{label}"), f.count);
            prometheus_line(&mut out, "eh_", &format!("frame_ns_sum{label}"), f.total_ns);
            for &(b, c) in &f.buckets {
                let le = eh_obs::bucket_floor(b as usize + 1).max(1) - 1;
                prometheus_line(
                    &mut out,
                    "eh_",
                    &format!("frame_ns_bucket{{frame=\"{}\",le=\"{le}\"}}", f.name),
                    c,
                );
            }
        }
    }
    out
}

/// Default relation name for `\l file`: the file stem with
/// non-identifier characters replaced.
fn relation_name_for(path: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("R");
    let mut name: String = stem
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if name.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        name.insert(0, 'R');
    }
    name
}

/// Outcome of one statement.
enum StmtOutcome {
    Output(String),
    Error(String),
    Quit,
}

fn run_statement(backend: &mut Backend, stmt: &str, json: bool) -> StmtOutcome {
    let result = if let Some(rest) = stmt.strip_prefix('\\') {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim().to_string();
        match cmd {
            "q" | "quit" => return StmtOutcome::Quit,
            "help" | "?" => Ok(HELP.to_string()),
            "d" => backend.list(),
            "timing" => Err("\\timing takes no arguments".into()),
            "stats" => backend.stats(),
            "cluster" => backend.cluster_status(),
            "metrics" => match arg.as_str() {
                "" => backend.metrics(json),
                "--json" => backend.metrics(true),
                other => Err(format!(
                    "\\metrics takes no argument but --json, got '{other}'"
                )),
            },
            "l" | "load" => {
                let mut words = arg.split_whitespace();
                match words.next() {
                    None => Err("\\l needs a file path".into()),
                    Some(path) => {
                        let name = words
                            .next()
                            .map(str::to_string)
                            .unwrap_or_else(|| relation_name_for(path));
                        backend.load(path, &name)
                    }
                }
            }
            "prepare" => {
                let mut words = arg.splitn(2, char::is_whitespace);
                match (words.next(), words.next()) {
                    (Some(name), Some(query)) if !query.trim().is_empty() => {
                        backend.prepare(name, query.trim())
                    }
                    _ => Err("\\prepare needs NAME QUERY".into()),
                }
            }
            "exec" => {
                if arg.is_empty() {
                    Err("\\exec needs a statement name".into())
                } else {
                    backend.exec(&arg)
                }
            }
            "explain" => {
                if arg.is_empty() {
                    Err("\\explain needs a query".into())
                } else {
                    backend.explain(&arg)
                }
            }
            "trace" => {
                if arg.is_empty() {
                    Err("\\trace needs a query".into())
                } else {
                    backend.trace(&arg)
                }
            }
            "slow" => {
                if arg.is_empty() {
                    backend.slow(10)
                } else {
                    match arg.parse::<usize>() {
                        Ok(n) => backend.slow(n),
                        Err(_) => Err(format!("\\slow takes an entry count, got '{arg}'")),
                    }
                }
            }
            "set" => {
                let mut words = arg.split_whitespace();
                match (words.next(), words.next()) {
                    (Some(k), Some(v)) => backend.set_option(k, v),
                    _ => Err("\\set needs KEY VALUE".into()),
                }
            }
            "save" => {
                if arg.is_empty() {
                    Err("\\save needs a path".into())
                } else {
                    backend.save(&arg)
                }
            }
            other => Err(format!("unknown command \\{other} (try \\help)")),
        }
    } else {
        backend.query(stmt)
    };
    match result {
        Ok(out) => StmtOutcome::Output(out),
        Err(e) => StmtOutcome::Error(e),
    }
}

/// Entry point shared by the `eh_shell` binary.
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("eh_shell: {e}");
            2
        }
    });
}

fn open_database(opts: &Opts) -> Result<Database, String> {
    let mut db = match &opts.db_image {
        Some(path) => Database::open(path).map_err(|e| e.to_string())?,
        None => Database::new(),
    };
    if let Some(n) = opts.threads {
        let cfg = db.config().with_threads(n);
        *db.config_mut() = cfg;
    }
    Ok(db)
}

fn run(args: &[String]) -> Result<i32, String> {
    let Some(opts) = parse_opts(args)? else {
        print!("{HELP}");
        return Ok(0);
    };

    // Server mode: bind, announce, serve until killed.
    if !opts.serve.is_empty() {
        let db = open_database(&opts)?;
        let addrs: Vec<&str> = opts.serve.iter().map(String::as_str).collect();
        let options = ServerOptions {
            image_dir: opts.image_dir.as_ref().map(Into::into),
            ..ServerOptions::default()
        };
        let server = Server::bind(db, &addrs, options).map_err(|e| e.to_string())?;
        for a in server.bound_addrs() {
            println!("eh_server listening on {a}");
        }
        std::io::stdout().flush().ok();
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let mut backend = if !opts.cluster.is_empty() {
        Backend::Cluster {
            cluster: Cluster::connect(&opts.cluster).map_err(|e| e.to_string())?,
            statements: HashMap::new(),
        }
    } else {
        match &opts.connect {
            Some(addr) => Backend::Remote {
                client: EhClient::connect(addr).map_err(|e| e.to_string())?,
                statements: HashMap::new(),
            },
            None => Backend::Embedded {
                db: Box::new(open_database(&opts)?),
                cache: PlanCache::new(64),
                statements: HashMap::new(),
                slowlog: SlowQueryLog::new(),
            },
        }
    };

    let mut timing = false;
    let mut had_error = false;
    let stdout = std::io::stdout();
    let emit = |outcome: StmtOutcome, timing: bool, elapsed_ms: f64| -> bool {
        let mut out = stdout.lock();
        match outcome {
            StmtOutcome::Output(s) => {
                let _ = out.write_all(s.as_bytes());
                if timing {
                    let _ = writeln!(out, "Time: {elapsed_ms:.3} ms");
                }
                let _ = out.flush();
                false
            }
            StmtOutcome::Error(e) => {
                let _ = writeln!(out, "error: {e}");
                let _ = out.flush();
                true
            }
            StmtOutcome::Quit => false,
        }
    };

    let json = opts.json;
    let process =
        |backend: &mut Backend, stmt: &str, timing: &mut bool, had_error: &mut bool| -> bool {
            if stmt == "\\timing" {
                *timing = !*timing;
                println!("Timing {}", if *timing { "on" } else { "off" });
                return true;
            }
            let t0 = Instant::now();
            let outcome = run_statement(backend, stmt, json);
            let quit = matches!(outcome, StmtOutcome::Quit);
            if emit(outcome, *timing, t0.elapsed().as_secs_f64() * 1e3) {
                *had_error = true;
            }
            !quit
        };

    if let Some(commands) = &opts.commands {
        for stmt in split_statements(commands) {
            if !process(&mut backend, &stmt, &mut timing, &mut had_error) {
                break;
            }
        }
        return Ok(if had_error { 1 } else { 0 });
    }

    // Interactive / piped REPL.
    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        match &backend {
            Backend::Embedded { .. } => println!("eh_shell (embedded) — \\help for help"),
            Backend::Remote { client, .. } => {
                println!("eh_shell — connected to {}", client.server_banner())
            }
            Backend::Cluster { cluster, .. } => {
                println!(
                    "eh_shell — coordinating {} shard worker(s)",
                    cluster.num_workers()
                )
            }
        }
    }
    let mut pending = String::new();
    'outer: loop {
        if interactive {
            print!(
                "{}",
                if pending.trim().is_empty() {
                    "eh> "
                } else {
                    "...> "
                }
            );
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        pending.push_str(&line);
        let (stmts, rest) = split_partial(&pending);
        pending = rest;
        for stmt in stmts {
            if !process(&mut backend, &stmt, &mut timing, &mut had_error) {
                break 'outer;
            }
        }
    }
    // EOF with an unfinished statement: run what's there.
    let tail = pending.trim().to_string();
    if !tail.is_empty() {
        process(&mut backend, &tail, &mut timing, &mut had_error);
    }
    Ok(if had_error && !interactive { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_splitting_keeps_query_semicolons() {
        let stmts = split_statements(
            "\\l /tmp/e.tsv E; C(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.; \\d",
        );
        assert_eq!(
            stmts,
            vec![
                "\\l /tmp/e.tsv E",
                "C(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.",
                "\\d",
            ]
        );
    }

    #[test]
    fn prepare_carries_its_query_across_semicolons() {
        let stmts = split_statements(
            "\\prepare t C(;w:long) :- E(x,y); w=<<COUNT(*)>>.; \\exec t; \\exec t",
        );
        assert_eq!(
            stmts,
            vec![
                "\\prepare t C(;w:long) :- E(x,y); w=<<COUNT(*)>>.",
                "\\exec t",
                "\\exec t",
            ]
        );
    }

    #[test]
    fn newlines_continue_unfinished_queries() {
        let (done, rest) = split_partial("T(x,y) :-\n  E(x,y)");
        assert!(done.is_empty());
        assert_eq!(rest, "T(x,y) :-   E(x,y)");
        let (done, rest) = split_partial("T(x,y) :-\n  E(x,y).\n");
        assert_eq!(done, vec!["T(x,y) :-   E(x,y)."]);
        assert!(rest.is_empty());
    }

    #[test]
    fn one_line_programs_stay_whole() {
        let stmts = split_statements("A(x,z) :- E(x,y),E(y,z). B(z) :- A('0',z).; \\d");
        assert_eq!(
            stmts,
            vec!["A(x,z) :- E(x,y),E(y,z). B(z) :- A('0',z).", "\\d"]
        );
    }

    #[test]
    fn relation_names_from_paths() {
        assert_eq!(relation_name_for("/tmp/edges.tsv"), "edges");
        assert_eq!(relation_name_for("/tmp/1-bad name.csv"), "R1_bad_name");
        assert_eq!(relation_name_for(""), "R");
    }

    #[test]
    fn embedded_shell_end_to_end() {
        let dir = std::env::temp_dir().join(format!("eh_shell_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("e.tsv");
        std::fs::write(&tsv, "src:u32\tdst:u32\n0\t1\n1\t2\n0\t2\n").unwrap();
        let mut backend = Backend::Embedded {
            db: Box::new(Database::new()),
            cache: PlanCache::new(8),
            statements: HashMap::new(),
            slowlog: SlowQueryLog::new(),
        };
        let load = format!("\\l {} E", tsv.display());
        let out = match run_statement(&mut backend, &load, false) {
            StmtOutcome::Output(s) => s,
            other => panic!("load failed: {other:?}"),
        };
        assert!(out.contains("loaded 3 rows into E"), "{out}");
        let q = "C(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.";
        let out = match run_statement(&mut backend, q, false) {
            StmtOutcome::Output(s) => s,
            other => panic!("query failed: {other:?}"),
        };
        assert!(out.contains("1\n(scalar)"), "{out}");
        let out = match run_statement(&mut backend, "\\prepare t T(x,y) :- E(x,y).", false) {
            StmtOutcome::Output(s) => s,
            other => panic!("prepare failed: {other:?}"),
        };
        assert!(out.contains("prepared t (compiled)"), "{out}");
        let out = match run_statement(&mut backend, "\\exec t", false) {
            StmtOutcome::Output(s) => s,
            other => panic!("exec failed: {other:?}"),
        };
        assert!(out.contains("(3 rows)"), "{out}");
        let out = match run_statement(&mut backend, "\\d", false) {
            StmtOutcome::Output(s) => s,
            other => panic!("list failed: {other:?}"),
        };
        assert!(out.contains("E\trows=3"), "{out}");
        // A one-line multi-rule program runs as one read-only overlay
        // program: rule 2 sees rule 1's head.
        let program = "Hop2(x,z) :- E(x,y),E(y,z). From(z) :- Hop2('0',z).";
        let out = match run_statement(&mut backend, program, false) {
            StmtOutcome::Output(s) => s,
            other => panic!("program failed: {other:?}"),
        };
        assert!(out.contains("(1 rows)"), "{out}");
        // \explain shows the compiled loop nest; with E loaded the
        // planner has catalog stats, so the order is cost-based.
        let out = match run_statement(
            &mut backend,
            "\\explain T(x,y,z) :- E(x,y),E(y,z),E(x,z).",
            false,
        ) {
            StmtOutcome::Output(s) => s,
            other => panic!("explain failed: {other:?}"),
        };
        assert!(out.contains("order:"), "{out}");
        assert!(out.contains("cost-based"), "{out}");
        assert!(out.contains("for "), "{out}");
        match run_statement(&mut backend, "\\explain", false) {
            StmtOutcome::Error(e) => assert!(e.contains("needs a query"), "{e}"),
            other => panic!("expected error: {other:?}"),
        }
        // \trace runs profiled and prints a span tree + row count; with
        // threshold 0 every statement lands in the slow-query log.
        match run_statement(&mut backend, "\\set slow_ms 0", false) {
            StmtOutcome::Output(s) => assert_eq!(s, "slow_ms = 0\n"),
            other => panic!("set slow_ms failed: {other:?}"),
        }
        let out = match run_statement(
            &mut backend,
            "\\trace T(x,y,z) :- E(x,y),E(y,z),E(x,z).",
            false,
        ) {
            StmtOutcome::Output(s) => s,
            other => panic!("trace failed: {other:?}"),
        };
        assert!(out.starts_with("trace "), "{out}");
        assert!(out.contains("kernels:"), "{out}");
        assert!(out.contains("(1 rows)"), "{out}");
        let out = match run_statement(&mut backend, "\\slow", false) {
            StmtOutcome::Output(s) => s,
            other => panic!("slow failed: {other:?}"),
        };
        assert!(out.contains("slow: trace="), "{out}");
        assert!(out.contains("T(x,y,z)"), "{out}");
        match run_statement(&mut backend, "\\slow nope", false) {
            StmtOutcome::Error(e) => assert!(e.contains("entry count"), "{e}"),
            other => panic!("expected error: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_statements_carry_their_query_across_semicolons() {
        let stmts = split_statements("\\trace C(;w:long) :- E(x,y); w=<<COUNT(*)>>.; \\slow 5");
        assert_eq!(
            stmts,
            vec!["\\trace C(;w:long) :- E(x,y); w=<<COUNT(*)>>.", "\\slow 5"]
        );
    }

    #[test]
    fn metrics_render_text_and_prometheus() {
        use crate::protocol::{FrameStat, StatsExt};
        let stats = ServerStats {
            epoch: 2,
            relations: 1,
            sessions_total: 3,
            sessions_active: 1,
            queries: 5,
            cache_hits: 4,
            cache_misses: 1,
            cache_entries: 1,
            cache_capacity: 64,
            ext: Some(StatsExt {
                bytes_in: 100,
                bytes_out: 900,
                frames: vec![FrameStat {
                    name: "query".into(),
                    count: 5,
                    total_ns: 5_000_000,
                    buckets: vec![(20, 5)],
                }],
            }),
            ..Default::default()
        };
        let text = render_metrics_text(&stats);
        assert!(text.contains("bytes in=100 out=900"), "{text}");
        assert!(text.contains("query"), "{text}");
        let prom = render_metrics_prometheus(&stats);
        assert!(prom.contains("eh_plan_cache_hits 4\n"), "{prom}");
        assert!(prom.contains("eh_bytes_in_total 100\n"), "{prom}");
        assert!(
            prom.contains("eh_frame_ns_count{frame=\"query\"} 5\n"),
            "{prom}"
        );
        assert!(
            prom.contains("eh_frame_ns_bucket{frame=\"query\",le=\"1048575\"} 5\n"),
            "{prom}"
        );
        // Every line is `name value` or `name{labels} value`.
        for line in prom.lines() {
            assert!(line.starts_with("eh_"), "{line}");
            assert!(
                line.rsplit(' ').next().unwrap().parse::<u64>().is_ok(),
                "{line}"
            );
        }
        // No ext: the text renderer says so instead of a bare table.
        let mut bare = stats;
        bare.ext = None;
        assert!(render_metrics_text(&bare).contains("no frame metrics"));
        // The embedded backend's \metrics goes through the same path.
        let mut backend = Backend::Embedded {
            db: Box::new(Database::new()),
            cache: PlanCache::new(8),
            statements: HashMap::new(),
            slowlog: SlowQueryLog::new(),
        };
        match run_statement(&mut backend, "\\metrics", false) {
            StmtOutcome::Output(s) => assert!(s.contains("plan_cache"), "{s}"),
            other => panic!("metrics failed: {other:?}"),
        }
        match run_statement(&mut backend, "\\metrics --json", false) {
            StmtOutcome::Output(s) => assert!(s.contains("eh_epoch 0\n"), "{s}"),
            other => panic!("metrics --json failed: {other:?}"),
        }
        match run_statement(&mut backend, "\\metrics bogus", false) {
            StmtOutcome::Error(e) => assert!(e.contains("--json"), "{e}"),
            other => panic!("expected error: {other:?}"),
        }
    }

    impl std::fmt::Debug for StmtOutcome {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                StmtOutcome::Output(s) => write!(f, "Output({s})"),
                StmtOutcome::Error(e) => write!(f, "Error({e})"),
                StmtOutcome::Quit => write!(f, "Quit"),
            }
        }
    }
}
