//! Dictionary-backed encoding of typed rows into flat [`TupleBuffer`]s.
//!
//! A [`StorageCatalog`] owns the typed [`RelationSchema`]s plus the
//! shared dictionary [`Domain`]s they encode through. Encoding streams
//! typed values column-by-column into a stride-`arity` buffer — key
//! columns become dense u32 ids, the (optional) `f64` column becomes the
//! parallel annotation column — so ingest produces the engine's
//! interchange format directly, with no per-row allocation.

use crate::schema::{ColumnType, RelationSchema, StorageError, TypedValue};
use eh_semiring::DynValue;
use eh_trie::{Dictionary, TupleBuffer};
use std::collections::BTreeMap;

/// One shared dictionary: a typed key space mapped to dense u32 ids.
/// Columns (possibly across relations) that name the same domain encode
/// through the same dictionary, so their ids are join-consistent.
#[derive(Clone, Debug)]
pub enum Domain {
    /// 64-bit unsigned keys.
    U64(Dictionary<u64>),
    /// 64-bit signed keys.
    I64(Dictionary<i64>),
    /// String keys.
    Str(Dictionary<String>),
}

impl Domain {
    /// Fresh empty domain for a dictionary-backed column type.
    pub fn for_type(ty: ColumnType) -> Option<Domain> {
        match ty {
            ColumnType::U64 => Some(Domain::U64(Dictionary::new())),
            ColumnType::I64 => Some(Domain::I64(Dictionary::new())),
            ColumnType::Str => Some(Domain::Str(Dictionary::new())),
            ColumnType::U32 | ColumnType::F64 => None,
        }
    }

    /// The carrier type of this domain's keys.
    pub fn carrier(&self) -> ColumnType {
        match self {
            Domain::U64(_) => ColumnType::U64,
            Domain::I64(_) => ColumnType::I64,
            Domain::Str(_) => ColumnType::Str,
        }
    }

    /// Number of distinct keys encoded so far.
    pub fn len(&self) -> usize {
        match self {
            Domain::U64(d) => d.len(),
            Domain::I64(d) => d.len(),
            Domain::Str(d) => d.len(),
        }
    }

    /// True when no keys have been encoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode a typed key, allocating a dense id on first sight.
    pub fn encode(&mut self, value: &TypedValue) -> Result<u32, StorageError> {
        match (self, value) {
            (Domain::U64(d), TypedValue::U64(v)) => Ok(d.encode(*v)),
            (Domain::I64(d), TypedValue::I64(v)) => Ok(d.encode(*v)),
            (Domain::Str(d), TypedValue::Str(v)) => Ok(d.encode_ref(v.as_str())),
            (dom, v) => Err(StorageError::Schema(format!(
                "value {v} ({}) cannot encode in a {} domain",
                v.column_type(),
                dom.carrier()
            ))),
        }
    }

    /// Encode raw field text parsed as this domain's carrier type.
    /// String domains take the text as-is (borrowed; hits don't clone).
    pub fn encode_text(&mut self, text: &str) -> Result<u32, String> {
        match self {
            Domain::U64(d) => text
                .parse()
                .map(|v| d.encode(v))
                .map_err(|_| format!("'{text}' is not a u64")),
            Domain::I64(d) => text
                .parse()
                .map(|v| d.encode(v))
                .map_err(|_| format!("'{text}' is not an i64")),
            Domain::Str(d) => Ok(d.encode_ref(text)),
        }
    }

    /// Id of an already-encoded key, if present (read-only lookup).
    pub fn lookup(&self, value: &TypedValue) -> Option<u32> {
        match (self, value) {
            (Domain::U64(d), TypedValue::U64(v)) => d.get(v),
            (Domain::I64(d), TypedValue::I64(v)) => d.get(v),
            (Domain::Str(d), TypedValue::Str(v)) => d.get(v),
            _ => None,
        }
    }

    /// Id for field text parsed as the carrier type, if present
    /// (string domains probe with the borrowed text, no allocation).
    pub fn lookup_text(&self, text: &str) -> Option<u32> {
        match self {
            Domain::U64(d) => text.parse().ok().and_then(|v| d.get(&v)),
            Domain::I64(d) => text.parse().ok().and_then(|v| d.get(&v)),
            Domain::Str(d) => d.get_ref(text),
        }
    }

    /// Original key for a dense id.
    pub fn decode(&self, id: u32) -> Option<TypedValue> {
        match self {
            Domain::U64(d) => d.decode(id).map(|&v| TypedValue::U64(v)),
            Domain::I64(d) => d.decode(id).map(|&v| TypedValue::I64(v)),
            Domain::Str(d) => d.decode(id).map(|v| TypedValue::Str(v.clone())),
        }
    }
}

/// The typed catalog: relation schemas plus the dictionary domains they
/// encode through. This is the metadata half of a database — the encoded
/// tuples themselves live in the engine's relation store and only pass
/// through here during ingest, decode, and image save/load.
#[derive(Clone, Debug, Default)]
pub struct StorageCatalog {
    schemas: BTreeMap<String, RelationSchema>,
    domains: BTreeMap<String, Domain>,
}

impl StorageCatalog {
    /// Empty catalog.
    pub fn new() -> StorageCatalog {
        StorageCatalog::default()
    }

    /// Register (or replace) a relation schema, creating any domains it
    /// references. Errors if a referenced domain already exists with a
    /// different carrier type.
    pub fn register_schema(&mut self, schema: RelationSchema) -> Result<(), StorageError> {
        schema.validate()?;
        for col in &schema.columns {
            let Some(key) = col.domain_key() else {
                continue;
            };
            match self.domains.get(&key) {
                Some(dom) if dom.carrier() != col.ty => {
                    return Err(StorageError::Schema(format!(
                        "domain '{key}' holds {} keys but column '{}' of '{}' is {}",
                        dom.carrier(),
                        col.name,
                        schema.name,
                        col.ty
                    )));
                }
                Some(_) => {}
                None => {
                    self.domains
                        .insert(key, Domain::for_type(col.ty).expect("dictionary type"));
                }
            }
        }
        self.schemas.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Schema of a relation, if registered.
    pub fn schema(&self, relation: &str) -> Option<&RelationSchema> {
        self.schemas.get(relation)
    }

    /// Remove a relation's schema (its domains stay — they may be
    /// shared). Returns the schema if it was registered.
    pub fn remove_schema(&mut self, relation: &str) -> Option<RelationSchema> {
        self.schemas.remove(relation)
    }

    /// All registered schemas, in name order.
    pub fn schemas(&self) -> impl Iterator<Item = &RelationSchema> {
        self.schemas.values()
    }

    /// A dictionary domain by name.
    pub fn domain(&self, name: &str) -> Option<&Domain> {
        self.domains.get(name)
    }

    /// All domains, in name order.
    pub fn domains(&self) -> impl Iterator<Item = (&str, &Domain)> {
        self.domains.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Insert a pre-built domain (image loading); replaces any existing.
    pub(crate) fn insert_domain(&mut self, name: String, domain: Domain) {
        self.domains.insert(name, domain);
    }

    /// Check a domain out of the map (the CSV loader's fast path mutates
    /// checked-out domains by index, then puts them back).
    pub(crate) fn take_domain(&mut self, name: &str) -> Option<Domain> {
        self.domains.remove(name)
    }

    /// Encode typed rows for `relation` (whose schema must be registered)
    /// into a flat buffer: key columns to u32 ids, the `f64` column (if
    /// declared) to per-row annotations.
    pub fn encode_rows<'a, I>(
        &mut self,
        relation: &str,
        rows: I,
    ) -> Result<TupleBuffer, StorageError>
    where
        I: IntoIterator<Item = &'a [TypedValue]>,
    {
        let schema =
            self.schemas.get(relation).cloned().ok_or_else(|| {
                StorageError::Schema(format!("no schema for relation '{relation}'"))
            })?;
        let mut buf = TupleBuffer::new(schema.arity());
        let mut scratch: Vec<u32> = Vec::with_capacity(schema.arity());
        for (rowno, row) in rows.into_iter().enumerate() {
            if row.len() != schema.columns.len() {
                return Err(StorageError::Parse {
                    line: rowno + 1,
                    msg: format!(
                        "expected {} values, got {}",
                        schema.columns.len(),
                        row.len()
                    ),
                });
            }
            scratch.clear();
            let mut annot: Option<DynValue> = None;
            for (col, value) in schema.columns.iter().zip(row) {
                match col.ty {
                    ColumnType::F64 => {
                        let TypedValue::F64(v) = value else {
                            return Err(StorageError::Parse {
                                line: rowno + 1,
                                msg: format!("column '{}' expects f64, got {value}", col.name),
                            });
                        };
                        annot = Some(DynValue::F64(*v));
                    }
                    ColumnType::U32 => {
                        let TypedValue::U32(v) = value else {
                            return Err(StorageError::Parse {
                                line: rowno + 1,
                                msg: format!("column '{}' expects u32, got {value}", col.name),
                            });
                        };
                        scratch.push(*v);
                    }
                    _ => {
                        let key = col.domain_key().expect("dictionary column has a domain");
                        let dom = self.domains.get_mut(&key).expect("registered domain");
                        scratch.push(dom.encode(value).map_err(|e| StorageError::Parse {
                            line: rowno + 1,
                            msg: e.to_string(),
                        })?);
                    }
                }
            }
            match annot {
                Some(a) => buf.push_annotated(&scratch, a),
                None => buf.push_row(&scratch),
            }
        }
        Ok(buf)
    }

    /// Encode one value for a specific input column of a relation,
    /// allocating a fresh id on first sight.
    pub fn encode_value(
        &mut self,
        relation: &str,
        column: usize,
        value: &TypedValue,
    ) -> Result<u32, StorageError> {
        let schema = self
            .schemas
            .get(relation)
            .ok_or_else(|| StorageError::Schema(format!("no schema for relation '{relation}'")))?;
        let col = schema
            .columns
            .get(column)
            .ok_or_else(|| StorageError::Schema(format!("'{relation}' has no column {column}")))?;
        match (col.domain_key(), value) {
            (None, TypedValue::U32(v)) => Ok(*v),
            (None, v) => Err(StorageError::Schema(format!(
                "column '{}' of '{relation}' does not encode {v}",
                col.name
            ))),
            (Some(key), v) => {
                let col_name = col.name.clone();
                let dom = self.domains.get_mut(&key).expect("registered domain");
                dom.encode(v).map_err(|_| {
                    StorageError::Schema(format!(
                        "column '{col_name}' of '{relation}' does not encode {v}"
                    ))
                })
            }
        }
    }

    /// Read-only id lookup of field text against a relation's key column
    /// `key_index` (position among key columns, i.e. the stored tuple
    /// column). `None` when the key is absent or unparsable.
    pub fn lookup_key_text(&self, relation: &str, key_index: usize, text: &str) -> Option<u32> {
        let schema = self.schemas.get(relation)?;
        let (_, col) = schema.key_columns().nth(key_index)?;
        match col.domain_key() {
            None => text.parse().ok(),
            Some(key) => self.domains.get(&key)?.lookup_text(text),
        }
    }

    /// Read-only, type-checked id lookup of a typed value against a
    /// relation's key column `key_index`. `None` on an absent key *or* a
    /// carrier mismatch — a `U64(5)` never resolves to the unrelated
    /// string key `"5"`.
    pub fn lookup_key_value(
        &self,
        relation: &str,
        key_index: usize,
        value: &TypedValue,
    ) -> Option<u32> {
        let schema = self.schemas.get(relation)?;
        let (_, col) = schema.key_columns().nth(key_index)?;
        match (col.domain_key(), value) {
            (None, TypedValue::U32(v)) => Some(*v),
            (None, _) => None,
            (Some(key), v) => self.domains.get(&key)?.lookup(v),
        }
    }

    /// Whether a relation's key column `key_index` is dictionary-backed
    /// (so unresolvable constants must not fall back to integer parsing).
    pub fn key_is_dictionary(&self, relation: &str, key_index: usize) -> bool {
        self.schemas
            .get(relation)
            .and_then(|s| s.key_columns().nth(key_index))
            .map(|(_, c)| c.ty.is_dictionary())
            .unwrap_or(false)
    }

    /// Decode a stored id of a relation's key column `key_index` back to
    /// its typed value. Pass-through columns decode as `U32`.
    pub fn decode_key(&self, relation: &str, key_index: usize, id: u32) -> Option<TypedValue> {
        let schema = self.schemas.get(relation)?;
        let (_, col) = schema.key_columns().nth(key_index)?;
        match col.domain_key() {
            None => Some(TypedValue::U32(id)),
            Some(key) => self.domains.get(&key)?.decode(id),
        }
    }

    /// Decode an id through a named domain; `None` domain (or an id the
    /// domain never assigned) decodes as pass-through `U32`.
    pub fn decode_in_domain(&self, domain: Option<&str>, id: u32) -> TypedValue {
        domain
            .and_then(|d| self.domains.get(d))
            .and_then(|dom| dom.decode(id))
            .unwrap_or(TypedValue::U32(id))
    }

    /// Domain key of a relation's key column `key_index` (stored-tuple
    /// position), `None` for pass-through columns.
    pub fn key_domain(&self, relation: &str, key_index: usize) -> Option<String> {
        let schema = self.schemas.get(relation)?;
        let (_, col) = schema.key_columns().nth(key_index)?;
        col.domain_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType as T;

    fn follows_schema() -> RelationSchema {
        RelationSchema::new("Follows")
            .column_in("src", T::Str, "user")
            .column_in("dst", T::Str, "user")
    }

    #[test]
    fn shared_domain_is_join_consistent() {
        let mut cat = StorageCatalog::new();
        cat.register_schema(follows_schema()).unwrap();
        let rows: Vec<Vec<TypedValue>> = vec![
            vec![TypedValue::Str("a".into()), TypedValue::Str("b".into())],
            vec![TypedValue::Str("b".into()), TypedValue::Str("c".into())],
        ];
        let buf = cat
            .encode_rows("Follows", rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(buf.arity(), 2);
        // "b" must get the same id as src and as dst.
        assert_eq!(buf.row(0)[1], buf.row(1)[0]);
        assert_eq!(cat.domain("user").unwrap().len(), 3);
    }

    #[test]
    fn f64_column_becomes_annotation() {
        let mut cat = StorageCatalog::new();
        cat.register_schema(
            RelationSchema::new("R")
                .column("k", T::U64)
                .column("w", T::F64),
        )
        .unwrap();
        let rows: Vec<Vec<TypedValue>> = vec![
            vec![TypedValue::U64(100), TypedValue::F64(0.5)],
            vec![TypedValue::U64(7), TypedValue::F64(1.5)],
        ];
        let buf = cat
            .encode_rows("R", rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(buf.arity(), 1, "f64 column is not a key");
        assert_eq!(buf.annotations().unwrap().len(), 2);
        assert_eq!(buf.annot(1), Some(DynValue::F64(1.5)));
        assert_eq!(buf.row(0), &[0], "u64 keys densely remapped");
    }

    #[test]
    fn u32_passes_through_unencoded() {
        let mut cat = StorageCatalog::new();
        cat.register_schema(
            RelationSchema::new("E")
                .column("s", T::U32)
                .column("d", T::U32),
        )
        .unwrap();
        let rows: Vec<Vec<TypedValue>> = vec![vec![TypedValue::U32(99), TypedValue::U32(3)]];
        let buf = cat
            .encode_rows("E", rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(buf.row(0), &[99, 3]);
        assert_eq!(cat.domains().count(), 0);
    }

    #[test]
    fn decode_round_trips() {
        let mut cat = StorageCatalog::new();
        cat.register_schema(follows_schema()).unwrap();
        let rows: Vec<Vec<TypedValue>> = vec![vec![
            TypedValue::Str("x".into()),
            TypedValue::Str("y".into()),
        ]];
        cat.encode_rows("Follows", rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(
            cat.decode_key("Follows", 0, 0),
            Some(TypedValue::Str("x".into()))
        );
        assert_eq!(cat.lookup_key_text("Follows", 1, "y"), Some(1));
        assert_eq!(cat.lookup_key_text("Follows", 1, "nope"), None);
        assert!(cat.key_is_dictionary("Follows", 0));
    }

    #[test]
    fn domain_type_conflicts_rejected() {
        let mut cat = StorageCatalog::new();
        cat.register_schema(RelationSchema::new("A").column_in("k", T::Str, "d"))
            .unwrap();
        let clash = RelationSchema::new("B").column_in("k", T::U64, "d");
        assert!(cat.register_schema(clash).is_err());
    }

    #[test]
    fn wrong_typed_value_is_error_not_panic() {
        let mut cat = StorageCatalog::new();
        cat.register_schema(follows_schema()).unwrap();
        let rows: Vec<Vec<TypedValue>> =
            vec![vec![TypedValue::U64(1), TypedValue::Str("y".into())]];
        assert!(cat
            .encode_rows("Follows", rows.iter().map(|r| r.as_slice()))
            .is_err());
        let short: Vec<Vec<TypedValue>> = vec![vec![TypedValue::Str("x".into())]];
        assert!(cat
            .encode_rows("Follows", short.iter().map(|r| r.as_slice()))
            .is_err());
    }
}
