//! PageRank and SSSP through the query language, validated against the
//! hand-coded low-level baselines (paper Tables 6 and 7 in miniature).
//!
//! ```sh
//! cargo run --release --example pagerank_sssp
//! ```

use emptyheaded::{algorithms, baselines, graph, Config};
use std::time::Instant;

fn main() {
    let spec = &graph::paper_datasets()[2]; // LiveJournal analog
    let g = spec.generate_scaled(0.05);
    println!(
        "dataset: {} analog — {} nodes, {} directed edges",
        spec.name,
        g.num_nodes,
        g.num_edges()
    );

    // PageRank: 3 lines of datalog vs ~300 lines in Galois (paper §5.2.2).
    let t0 = Instant::now();
    let eh_pr = algorithms::pagerank(&g, 5, Config::default()).unwrap();
    let t_eh = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ll_pr = baselines::lowlevel::pagerank(&g, 5);
    let t_ll = t0.elapsed().as_secs_f64();
    let max_diff = eh_pr
        .iter()
        .zip(&ll_pr)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("PageRank(5 iters): EH {t_eh:.4}s, low-level {t_ll:.4}s, max |Δ| {max_diff:.2e}");

    // SSSP from the highest-degree node (the paper's start-node choice).
    let start = g.max_degree_node();
    let t0 = Instant::now();
    let eh_d = algorithms::sssp(&g, start, Config::default()).unwrap();
    let t_eh = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let bfs_d = baselines::lowlevel::sssp_bfs(&g, start);
    let t_bfs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let bf_d = baselines::lowlevel::sssp_bellman_ford(&g, start);
    let t_bf = t0.elapsed().as_secs_f64();
    assert_eq!(eh_d, bfs_d);
    assert_eq!(eh_d, bf_d);
    let reached = eh_d.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "SSSP(start={start}): EH(seminaive) {t_eh:.4}s, BFS {t_bfs:.4}s, Bellman-Ford {t_bf:.4}s — {reached}/{} reachable",
        g.num_nodes
    );
}
