//! `prepared_vs_adhoc`: what the server's shared plan cache buys.
//!
//! EmptyHeaded's compile-once design (paper §3) means a request that
//! re-parses and re-plans pays the GHD search and code generation every
//! time, while `ExecPrepared` through the plan cache pays a hash lookup
//! and runs the compiled artifact. Measured on the googleplus-analog
//! triangle count (the paper's canonical query), in-process — the same
//! code paths a server session dispatches, minus socket I/O.

use criterion::{criterion_group, criterion_main, Criterion};
use eh_bench::queries;
use eh_core::Database;
use eh_graph::paper_datasets;
use eh_server::PlanCache;

fn loaded_db() -> Database {
    let g = paper_datasets()[0].generate_scaled(0.05).prune_by_degree();
    let mut db = Database::new();
    db.load_graph("Edge", &g);
    // Warm the tries so every variant measures plan handling + join
    // execution, not index construction (paper §5.1.3).
    db.query_ref(queries::TRIANGLE).unwrap();
    db
}

fn bench_prepared_vs_adhoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared_vs_adhoc");
    group.sample_size(10);
    let db = loaded_db();

    // Every request re-parses, re-validates, re-runs the GHD search,
    // and re-compiles the physical plan (a server with no plan cache).
    group.bench_function("adhoc_replan", |b| {
        b.iter(|| db.query_ref(queries::TRIANGLE).unwrap().scalar_u64())
    });

    // Every request goes through the shared LRU cache: one compile on
    // the first request, a normalized-text hash lookup afterwards —
    // the server's `Query`/`ExecPrepared` fast path.
    let mut cache = PlanCache::new(64);
    cache.get_or_prepare(&db, queries::TRIANGLE).unwrap();
    group.bench_function("plan_cache", |b| {
        b.iter(|| {
            let (plan, _) = cache.get_or_prepare(&db, queries::TRIANGLE).unwrap();
            plan.execute(&db).unwrap().scalar_u64()
        })
    });

    // The floor: a statement handle held directly (no lookup at all).
    let stmt = db.prepare(queries::TRIANGLE).unwrap();
    group.bench_function("prepared_direct", |b| {
        b.iter(|| stmt.execute(&db).unwrap().scalar_u64())
    });

    group.finish();
}

criterion_group!(benches, bench_prepared_vs_adhoc);
criterion_main!(benches);
