//! The intersection dispatcher: one entry point over every pair of layouts.
//!
//! [`intersect`] and [`intersect_count`] dispatch on the layout pair and the
//! [`IntersectConfig`] (SIMD on/off for the `-S` ablation, algorithm
//! optimizer on/off for the `-RA` ablation). All kernels preserve the min
//! property (paper §2.1, §4.2), so Generic-Join built on top of this module
//! inherits its worst-case optimality.

use crate::bitset::{self, BitsetSet};
use crate::block::{self, BlockSet};
use crate::uint::{self, UintSet};
use crate::{bit_of, block_of, Set};

/// Which uint∩uint algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntersectAlgo {
    /// Scalar two-pointer merge.
    MergeScalar,
    /// SIMD shuffling (SSE all-vs-all compare).
    Shuffle,
    /// Exponential search from the smaller set.
    Gallop,
    /// EmptyHeaded default: gallop at ≥32:1 cardinality ratio, else shuffle.
    Hybrid,
}

/// Kernel configuration — the execution-engine ablation knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntersectConfig {
    /// Use SIMD kernels (`false` reproduces the `-S` ablation, Table 11).
    pub simd: bool,
    /// Select set-intersection algorithms by cardinality skew (`false`
    /// forces plain merge, part of the `-RA` ablation, Table 8).
    pub algorithm_optimizer: bool,
}

impl Default for IntersectConfig {
    fn default() -> Self {
        IntersectConfig {
            simd: true,
            algorithm_optimizer: true,
        }
    }
}

impl IntersectConfig {
    /// The configuration EmptyHeaded ships with.
    pub fn full() -> Self {
        Self::default()
    }

    /// Scalar-only (paper `-S`).
    pub fn no_simd() -> Self {
        IntersectConfig {
            simd: false,
            algorithm_optimizer: true,
        }
    }

    /// No algorithm selection (merge only; with uint-only layouts this is
    /// the paper's `-RA`).
    pub fn no_algorithms() -> Self {
        IntersectConfig {
            simd: false,
            algorithm_optimizer: false,
        }
    }

    fn uint_uint(&self, a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        if !self.algorithm_optimizer {
            uint::intersect_merge_scalar(a, b, out);
        } else {
            uint::intersect_hybrid(a, b, self.simd, out);
        }
    }

    fn uint_uint_count(&self, a: &[u32], b: &[u32]) -> usize {
        if !self.algorithm_optimizer {
            uint::count_merge_scalar(a, b)
        } else {
            uint::count_hybrid(a, b, self.simd)
        }
    }
}

/// Intersect two sets, materializing the result. The result layout follows
/// the paper's rule: it is at most as dense as the sparser input, so
/// uint×anything yields uint, bitset×bitset yields bitset, composite
/// combinations stay composite.
pub fn intersect(a: &Set, b: &Set, cfg: &IntersectConfig) -> Set {
    match (a, b) {
        (Set::Uint(x), Set::Uint(y)) => {
            let mut out = Vec::new();
            cfg.uint_uint(x.values(), y.values(), &mut out);
            Set::Uint(UintSet::new(out))
        }
        (Set::Uint(x), Set::Bitset(y)) | (Set::Bitset(y), Set::Uint(x)) => {
            let mut out = Vec::new();
            bitset::intersect_uint_bitset(x.values(), y, &mut out);
            Set::Uint(UintSet::new(out))
        }
        (Set::Bitset(x), Set::Bitset(y)) => {
            Set::Bitset(bitset::intersect_bitset_bitset(x, y, cfg.simd))
        }
        (Set::Block(x), Set::Block(y)) => Set::Block(block::intersect_block_block(x, y, cfg.simd)),
        (Set::Uint(x), Set::Block(y)) | (Set::Block(y), Set::Uint(x)) => {
            let mut out = Vec::new();
            intersect_uint_block(x.values(), y, &mut out);
            Set::Uint(UintSet::new(out))
        }
        (Set::Bitset(x), Set::Block(y)) | (Set::Block(y), Set::Bitset(x)) => {
            let mut out = Vec::new();
            intersect_bitset_block(x, y, &mut out);
            Set::Uint(UintSet::new(out))
        }
    }
}

/// Count an intersection without materializing it (used by aggregate-only
/// queries, where the innermost Generic-Join loop is a pure count).
pub fn intersect_count(a: &Set, b: &Set, cfg: &IntersectConfig) -> usize {
    match (a, b) {
        (Set::Uint(x), Set::Uint(y)) => cfg.uint_uint_count(x.values(), y.values()),
        (Set::Uint(x), Set::Bitset(y)) | (Set::Bitset(y), Set::Uint(x)) => {
            bitset::count_uint_bitset(x.values(), y)
        }
        (Set::Bitset(x), Set::Bitset(y)) => bitset::count_bitset_bitset(x, y),
        (Set::Block(x), Set::Block(y)) => block::count_block_block(x, y),
        (Set::Uint(x), Set::Block(y)) | (Set::Block(y), Set::Uint(x)) => {
            x.values().iter().filter(|&&v| y.contains(v)).count()
        }
        (Set::Bitset(x), Set::Block(y)) | (Set::Block(y), Set::Bitset(x)) => {
            let mut n = 0;
            let mut out = Vec::new();
            intersect_bitset_block(x, y, &mut out);
            n += out.len();
            n
        }
    }
}

// lint:region-start(alloc-free): Generic-Join calls these once per loop level; they must only append to caller buffers
/// Intersect two sets writing the result *values* into a caller-provided
/// buffer — the allocation-free fast path for Generic-Join's loop levels,
/// where only the ascending value stream is needed, not a layout.
pub fn intersect_values(a: &Set, b: &Set, cfg: &IntersectConfig, out: &mut Vec<u32>) {
    match (a, b) {
        (Set::Uint(x), Set::Uint(y)) => cfg.uint_uint(x.values(), y.values(), out),
        (Set::Uint(x), Set::Bitset(y)) | (Set::Bitset(y), Set::Uint(x)) => {
            bitset::intersect_uint_bitset(x.values(), y, out);
        }
        (Set::Bitset(x), Set::Bitset(y)) => {
            let r = bitset::intersect_bitset_bitset(x, y, cfg.simd);
            out.extend(r.iter());
        }
        _ => {
            let r = intersect(a, b, cfg);
            out.extend(r.iter());
        }
    }
}

// lint:region-end(alloc-free)

/// Intersect many sets left-to-right, smallest-first (the standard
/// Generic-Join ordering: start from the smallest set so every step is
/// bounded by the smallest input).
pub fn intersect_all(sets: &[&Set], cfg: &IntersectConfig) -> Set {
    if sets.is_empty() {
        return Set::empty();
    }
    let mut order: Vec<usize> = (0..sets.len()).collect();
    order.sort_by_key(|&i| sets[i].len());
    let mut acc = sets[order[0]].clone();
    for &i in &order[1..] {
        if acc.is_empty() {
            break;
        }
        acc = intersect(&acc, sets[i], cfg);
    }
    acc
}

// lint:region-start(alloc-free): multiway chain + scratch reuse — the whole point of MultiwayScratch is zero per-call allocation
/// Intersect a sorted value slice (a materialized intermediate) with a set,
/// appending the surviving values to `out`. The slice side is always the
/// accumulator of a multiway chain, so this is the uint×layout dispatch
/// without constructing a [`Set`].
pub fn intersect_values_slice(a: &[u32], b: &Set, cfg: &IntersectConfig, out: &mut Vec<u32>) {
    match b {
        Set::Uint(y) => cfg.uint_uint(a, y.values(), out),
        Set::Bitset(y) => bitset::intersect_uint_bitset(a, y, out),
        Set::Block(y) => intersect_uint_block(a, y, out),
    }
}

/// Count the intersection of a sorted value slice with a set without
/// materializing it.
pub fn count_values_slice(a: &[u32], b: &Set, cfg: &IntersectConfig) -> usize {
    match b {
        Set::Uint(y) => cfg.uint_uint_count(a, y.values()),
        Set::Bitset(y) => bitset::count_uint_bitset(a, y),
        Set::Block(y) => a.iter().filter(|&&v| y.contains(v)).count(),
    }
}

/// Kernel-dispatch counters for the multiway intersection paths. Owned by
/// the [`MultiwayScratch`] so hot-path recording stays a plain field bump —
/// no atomics, no allocation — and readers drain them between joins with
/// [`KernelStats::take`]. Counts are *dispatch decisions*, classified the
/// same way the kernels themselves dispatch (layout pair + cardinality
/// ratio), so they explain which code path did the work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Multiway intersection calls (n ≥ 2).
    pub intersections: u64,
    /// Σ kernel input lengths (u32 values fed to dispatched kernels,
    /// intermediate accumulators included) — the observed analogue of the
    /// cost model's intersection-work estimate. Bumped where the dispatch
    /// already holds the lengths, so recording adds no extra set reads.
    pub values_scanned: u64,
    /// Two-pointer / SIMD-shuffle merge dispatches.
    pub merge_kernels: u64,
    /// Gallop (exponential-search / rank-probe) dispatches.
    pub gallop_kernels: u64,
    /// Bitset or block kernel dispatches.
    pub bitset_kernels: u64,
}

impl KernelStats {
    /// Fold another block into this one (wrapping, order-independent).
    pub fn merge(&mut self, other: &KernelStats) {
        self.intersections = self.intersections.wrapping_add(other.intersections);
        self.values_scanned = self.values_scanned.wrapping_add(other.values_scanned);
        self.merge_kernels = self.merge_kernels.wrapping_add(other.merge_kernels);
        self.gallop_kernels = self.gallop_kernels.wrapping_add(other.gallop_kernels);
        self.bitset_kernels = self.bitset_kernels.wrapping_add(other.bitset_kernels);
    }

    /// Drain the counters, leaving zeros behind.
    pub fn take(&mut self) -> KernelStats {
        std::mem::take(self)
    }
}

/// Classify and record a 2-way set×set dispatch: uint×uint splits into
/// merge vs gallop by the same skew rule the hybrid kernel uses; any
/// bitset/block participant is a bitset-family kernel.
fn note_pair(stats: &mut KernelStats, a: &Set, b: &Set, cfg: &IntersectConfig) {
    stats.values_scanned += (a.len() + b.len()) as u64;
    match (a, b) {
        (Set::Uint(_), Set::Uint(_)) => {
            let (s, l) = if a.len() <= b.len() {
                (a.len(), b.len())
            } else {
                (b.len(), a.len())
            };
            if cfg.algorithm_optimizer
                && crate::skew::cardinality_ratio(s, l) >= uint::GALLOP_RATIO as f64
            {
                stats.gallop_kernels += 1;
            } else {
                stats.merge_kernels += 1;
            }
        }
        _ => stats.bitset_kernels += 1,
    }
}

/// [`note_pair`] for the slice×set chain steps.
fn note_slice(stats: &mut KernelStats, a_len: usize, b: &Set, cfg: &IntersectConfig) {
    stats.values_scanned += (a_len + b.len()) as u64;
    match b {
        Set::Uint(_) => {
            let (s, l) = if a_len <= b.len() {
                (a_len, b.len())
            } else {
                (b.len(), a_len)
            };
            if cfg.algorithm_optimizer
                && crate::skew::cardinality_ratio(s, l) >= uint::GALLOP_RATIO as f64
            {
                stats.gallop_kernels += 1;
            } else {
                stats.merge_kernels += 1;
            }
        }
        _ => stats.bitset_kernels += 1,
    }
}

/// Reusable buffers for multiway intersections: an index ordering plus two
/// ping-pong value buffers for intermediate results. Owning one of these
/// (e.g. in an executor's per-node scratch) makes [`intersect_all_into`]
/// and [`count_all_into`] allocation-free across calls.
#[derive(Clone, Debug, Default)]
pub struct MultiwayScratch {
    /// `(len, index)` pairs, sorted so the chain runs smallest-first.
    order: Vec<(usize, usize)>,
    /// Intermediate accumulator (ping).
    ping: Vec<u32>,
    /// Intermediate accumulator (pong).
    pong: Vec<u32>,
    /// Per-set monotone rank cursors for the probe-smallest path.
    hints: Vec<usize>,
    /// Kernel-dispatch counters, recorded as plain field bumps on every
    /// multiway call and drained by profiling readers.
    pub stats: KernelStats,
}

impl MultiwayScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> MultiwayScratch {
        MultiwayScratch::default()
    }
}

/// [`intersect_all_into`] over an accessor instead of a slice: `set_at(i)`
/// yields the `i`-th of `n` sets. This is the form Generic-Join uses — the
/// participating sets live behind per-atom trie cursors, so collecting
/// `&Set` references into a slice would itself allocate per call.
pub fn intersect_all_with<'s, F>(
    n: usize,
    set_at: F,
    cfg: &IntersectConfig,
    scratch: &mut MultiwayScratch,
    out: &mut Vec<u32>,
) where
    F: Fn(usize) -> &'s Set,
{
    match n {
        0 => {}
        1 => {
            scratch.stats.values_scanned += set_at(0).len() as u64;
            out.extend(set_at(0).iter());
        }
        2 => {
            let (a, b) = (set_at(0), set_at(1));
            scratch.stats.intersections += 1;
            note_pair(&mut scratch.stats, a, b, cfg);
            if a.len() <= b.len() {
                intersect_values(a, b, cfg, out);
            } else {
                intersect_values(b, a, cfg, out);
            }
        }
        _ => {
            sort_by_len(n, &set_at, scratch);
            scratch.stats.intersections += 1;
            if probe_pays_off(cfg, scratch) {
                // One monotone rank-probe (gallop-family) pass per
                // non-smallest participant.
                scratch.stats.gallop_kernels += n as u64 - 1;
                scratch.stats.values_scanned += summed_order_len(scratch);
                probe_smallest_with(n, &set_at, scratch, |v| out.push(v));
            } else if let Some(last) = chain_all_but_largest(n, &set_at, cfg, scratch) {
                let acc_len = scratch.ping.len();
                note_slice(&mut scratch.stats, acc_len, set_at(last), cfg);
                intersect_values_slice(&scratch.ping, set_at(last), cfg, out);
            }
        }
    }
}

/// Fill `scratch.order` with `(len, index)` pairs sorted smallest-first.
fn sort_by_len<'s, F>(n: usize, set_at: &F, scratch: &mut MultiwayScratch)
where
    F: Fn(usize) -> &'s Set,
{
    scratch.order.clear();
    for i in 0..n {
        scratch.order.push((set_at(i).len(), i));
    }
    scratch.order.sort_unstable();
}

/// Σ participant lengths over a pre-sorted `scratch.order` — the
/// values-scanned charge for the probe-smallest path, which reads its
/// inputs in place instead of dispatching pairwise kernels.
fn summed_order_len(scratch: &MultiwayScratch) -> u64 {
    scratch.order.iter().map(|&(l, _)| l as u64).sum()
}

/// Whether an `n`-way intersection (order already sorted) should skip the
/// merge chain and probe from the smallest set: the algorithm optimizer is
/// on and the smallest participant is `GALLOP_RATIO`× smaller than every
/// other — the multiway analogue of the 2-way merge↔gallop switch.
fn probe_pays_off(cfg: &IntersectConfig, scratch: &MultiwayScratch) -> bool {
    cfg.algorithm_optimizer
        && crate::skew::cardinality_ratio(scratch.order[0].0, scratch.order[1].0)
            >= uint::GALLOP_RATIO as f64
}

/// Walk the smallest set once and probe every other participant with a
/// monotone rank cursor ([`Set::rank_hinted`] — galloping on uint, block
/// skipping on bitset), early-outing on the first miss. For wildly
/// asymmetric inputs this is O(s₀ · Σ log sᵢ) instead of the merge chain's
/// O(Σ sᵢ), and it materializes no intermediates at all. Probes run in
/// ascending set size so the most selective side rejects first.
fn probe_smallest_with<'s, F, E>(n: usize, set_at: &F, scratch: &mut MultiwayScratch, mut emit: E)
where
    F: Fn(usize) -> &'s Set,
    E: FnMut(u32),
{
    debug_assert!(n >= 3);
    scratch.hints.clear();
    scratch.hints.resize(n, 0);
    let small = set_at(scratch.order[0].1);
    'values: for v in small.iter() {
        for k in 1..n {
            if set_at(scratch.order[k].1)
                .rank_hinted(v, &mut scratch.hints[k])
                .is_none()
            {
                continue 'values;
            }
        }
        emit(v);
    }
}

/// The shared 3+-way chain over a pre-sorted `scratch.order` (see
/// [`sort_by_len`]): fold all but the largest into `scratch.ping` via the
/// ping-pong buffers, and return the largest set's index for the caller's
/// terminal step (materialize or count). `None` means the accumulator
/// emptied early — the overall result is empty/zero.
fn chain_all_but_largest<'s, F>(
    n: usize,
    set_at: &F,
    cfg: &IntersectConfig,
    scratch: &mut MultiwayScratch,
) -> Option<usize>
where
    F: Fn(usize) -> &'s Set,
{
    debug_assert!(n >= 3);
    debug_assert_eq!(scratch.order.len(), n);
    scratch.ping.clear();
    note_pair(
        &mut scratch.stats,
        set_at(scratch.order[0].1),
        set_at(scratch.order[1].1),
        cfg,
    );
    intersect_values(
        set_at(scratch.order[0].1),
        set_at(scratch.order[1].1),
        cfg,
        &mut scratch.ping,
    );
    for k in 2..n - 1 {
        if scratch.ping.is_empty() {
            return None;
        }
        scratch.pong.clear();
        let acc_len = scratch.ping.len();
        note_slice(&mut scratch.stats, acc_len, set_at(scratch.order[k].1), cfg);
        intersect_values_slice(
            &scratch.ping,
            set_at(scratch.order[k].1),
            cfg,
            &mut scratch.pong,
        );
        std::mem::swap(&mut scratch.ping, &mut scratch.pong);
    }
    if scratch.ping.is_empty() {
        return None;
    }
    Some(scratch.order[n - 1].1)
}

/// Intersect many sets smallest-first, writing the result *values* into a
/// caller-provided buffer and reusing `scratch` for intermediates — the
/// allocation-free counterpart of [`intersect_all`]. `out` is appended to,
/// not cleared.
pub fn intersect_all_into(
    sets: &[&Set],
    cfg: &IntersectConfig,
    scratch: &mut MultiwayScratch,
    out: &mut Vec<u32>,
) {
    intersect_all_with(sets.len(), |i| sets[i], cfg, scratch, out);
}

/// [`count_all_into`] over an accessor — see [`intersect_all_with`].
pub fn count_all_with<'s, F>(
    n: usize,
    set_at: F,
    cfg: &IntersectConfig,
    scratch: &mut MultiwayScratch,
) -> usize
where
    F: Fn(usize) -> &'s Set,
{
    match n {
        0 => 0,
        1 => {
            let len = set_at(0).len();
            scratch.stats.values_scanned += len as u64;
            len
        }
        2 => {
            scratch.stats.intersections += 1;
            note_pair(&mut scratch.stats, set_at(0), set_at(1), cfg);
            intersect_count(set_at(0), set_at(1), cfg)
        }
        _ => {
            sort_by_len(n, &set_at, scratch);
            scratch.stats.intersections += 1;
            if probe_pays_off(cfg, scratch) {
                scratch.stats.gallop_kernels += n as u64 - 1;
                scratch.stats.values_scanned += summed_order_len(scratch);
                let mut count = 0usize;
                probe_smallest_with(n, &set_at, scratch, |_| count += 1);
                count
            } else {
                match chain_all_but_largest(n, &set_at, cfg, scratch) {
                    Some(last) => {
                        let acc_len = scratch.ping.len();
                        note_slice(&mut scratch.stats, acc_len, set_at(last), cfg);
                        count_values_slice(&scratch.ping, set_at(last), cfg)
                    }
                    None => 0,
                }
            }
        }
    }
}

/// Count a multiway intersection without materializing the final set,
/// reusing `scratch` for intermediates.
pub fn count_all_into(
    sets: &[&Set],
    cfg: &IntersectConfig,
    scratch: &mut MultiwayScratch,
) -> usize {
    count_all_with(sets.len(), |i| sets[i], cfg, scratch)
}

fn intersect_uint_block(a: &[u32], b: &BlockSet, out: &mut Vec<u32>) {
    for &v in a {
        if b.contains(v) {
            out.push(v);
        }
    }
}

// lint:region-end(alloc-free)

fn intersect_bitset_block(a: &BitsetSet, b: &BlockSet, out: &mut Vec<u32>) {
    // Walk the bitset's values and probe the composite set; the bitset is
    // typically the denser side, so probe the composite's block index once
    // per block by grouping.
    let mut iter = a.iter().peekable();
    while let Some(&v) = iter.peek() {
        let blk = block_of(v);
        // Values in this block:
        let mut vals = Vec::new();
        while let Some(&w) = iter.peek() {
            if block_of(w) != blk {
                break;
            }
            vals.push(w);
            iter.next();
        }
        for v in vals {
            let _ = bit_of(v);
            if b.contains(v) {
                out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutKind::{self, *};

    fn mk(vals: &[u32], k: LayoutKind) -> Set {
        Set::from_sorted(vals, k)
    }

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    const KINDS: [LayoutKind; 3] = [Uint, Bitset, Block];

    #[test]
    fn all_layout_pairs_agree() {
        let a_vals: Vec<u32> = (0..400).map(|i| i * 3).collect();
        let b_vals: Vec<u32> = (0..400).map(|i| i * 2 + 1).collect();
        let expect = naive(&a_vals, &b_vals);
        let cfg = IntersectConfig::default();
        for ka in KINDS {
            for kb in KINDS {
                let a = mk(&a_vals, ka);
                let b = mk(&b_vals, kb);
                let r = intersect(&a, &b, &cfg);
                assert_eq!(r.to_vec(), expect, "{ka:?} x {kb:?}");
                assert_eq!(
                    intersect_count(&a, &b, &cfg),
                    expect.len(),
                    "{ka:?} x {kb:?}"
                );
            }
        }
    }

    #[test]
    fn all_layout_pairs_agree_scalar() {
        let a_vals: Vec<u32> = (0..300).map(|i| i * 5).collect();
        let b_vals: Vec<u32> = (10..250).collect();
        let expect = naive(&a_vals, &b_vals);
        let cfg = IntersectConfig::no_simd();
        for ka in KINDS {
            for kb in KINDS {
                let r = intersect(&mk(&a_vals, ka), &mk(&b_vals, kb), &cfg);
                assert_eq!(r.to_vec(), expect, "{ka:?} x {kb:?}");
            }
        }
    }

    #[test]
    fn result_layout_rule() {
        let cfg = IntersectConfig::default();
        let u = mk(&[1, 2, 3], Uint);
        let b = mk(&[2, 3, 4], Bitset);
        assert_eq!(intersect(&u, &b, &cfg).kind(), Uint);
        assert_eq!(intersect(&b, &b, &cfg).kind(), Bitset);
        assert_eq!(intersect(&u, &u, &cfg).kind(), Uint);
    }

    #[test]
    fn intersect_all_multiway() {
        let cfg = IntersectConfig::default();
        let a = mk(&(0..100).collect::<Vec<_>>(), Uint);
        let b = mk(&(0..100).filter(|v| v % 2 == 0).collect::<Vec<_>>(), Bitset);
        let c = mk(&(0..100).filter(|v| v % 3 == 0).collect::<Vec<_>>(), Uint);
        let r = intersect_all(&[&a, &b, &c], &cfg);
        let expect: Vec<u32> = (0..100).filter(|v| v % 6 == 0).collect();
        assert_eq!(r.to_vec(), expect);
    }

    #[test]
    fn intersect_all_empty_args() {
        let cfg = IntersectConfig::default();
        assert!(intersect_all(&[], &cfg).is_empty());
        let a = mk(&[], Uint);
        let b = mk(&[1, 2], Uint);
        assert!(intersect_all(&[&a, &b], &cfg).is_empty());
    }

    #[test]
    fn intersect_all_into_matches_intersect_all_every_pairing() {
        // Every LayoutKind pairing (and triple), full/scalar/merge-only
        // configs: the buffered multiway path must agree with the
        // materializing one.
        let a_vals: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let b_vals: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let c_vals: Vec<u32> = (0..800).collect();
        let mut scratch = MultiwayScratch::new();
        for cfg in [
            IntersectConfig::full(),
            IntersectConfig::no_simd(),
            IntersectConfig::no_algorithms(),
        ] {
            for ka in KINDS {
                for kb in KINDS {
                    let a = mk(&a_vals, ka);
                    let b = mk(&b_vals, kb);
                    let expect = intersect_all(&[&a, &b], &cfg).to_vec();
                    let mut got = Vec::new();
                    intersect_all_into(&[&a, &b], &cfg, &mut scratch, &mut got);
                    assert_eq!(got, expect, "{ka:?} x {kb:?} under {cfg:?}");
                    assert_eq!(
                        count_all_into(&[&a, &b], &cfg, &mut scratch),
                        expect.len(),
                        "{ka:?} x {kb:?} count under {cfg:?}"
                    );
                    for kc in KINDS {
                        let c = mk(&c_vals, kc);
                        let expect3 = intersect_all(&[&a, &b, &c], &cfg).to_vec();
                        let mut got3 = Vec::new();
                        intersect_all_into(&[&a, &b, &c], &cfg, &mut scratch, &mut got3);
                        assert_eq!(got3, expect3, "{ka:?} x {kb:?} x {kc:?} under {cfg:?}");
                        assert_eq!(
                            count_all_into(&[&a, &b, &c], &cfg, &mut scratch),
                            expect3.len(),
                            "{ka:?} x {kb:?} x {kc:?} count under {cfg:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn intersect_all_into_edge_cases() {
        let cfg = IntersectConfig::default();
        let mut scratch = MultiwayScratch::new();
        let mut out = Vec::new();
        intersect_all_into(&[], &cfg, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(count_all_into(&[], &cfg, &mut scratch), 0);
        // Single set: values pass through.
        let a = mk(&[3, 9, 12], Uint);
        intersect_all_into(&[&a], &cfg, &mut scratch, &mut out);
        assert_eq!(out, vec![3, 9, 12]);
        assert_eq!(count_all_into(&[&a], &cfg, &mut scratch), 3);
        // Empty intermediate short-circuits the 3+-way chain.
        let e = mk(&[], Uint);
        let b = mk(&[1, 2, 3], Bitset);
        let c = mk(&[2, 3, 4], Block);
        out.clear();
        intersect_all_into(&[&b, &e, &c], &cfg, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(count_all_into(&[&b, &e, &c], &cfg, &mut scratch), 0);
        // Scratch is reusable across calls (no stale state).
        out.clear();
        intersect_all_into(&[&b, &c], &cfg, &mut scratch, &mut out);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn multiway_probe_smallest_matches_merge_chain() {
        // Smallest set is ≥32× smaller than every other participant, so
        // the full config takes the probe-smallest path; merge-only
        // (`no_algorithms`) keeps the chain. Results must agree exactly
        // across every layout triple, for both materialize and count.
        let small_vals: Vec<u32> = vec![0, 96, 2_000, 5_000, 9_984];
        let mid_vals: Vec<u32> = (0..2_000).map(|i| i * 5).collect(); // 400×
        let big_vals: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        let mut scratch = MultiwayScratch::new();
        let probing = IntersectConfig::full();
        let merging = IntersectConfig::no_algorithms();
        for ks in KINDS {
            for km in KINDS {
                for kb in KINDS {
                    let s = mk(&small_vals, ks);
                    let m = mk(&mid_vals, km);
                    let b = mk(&big_vals, kb);
                    let mut merged = Vec::new();
                    intersect_all_into(&[&s, &m, &b], &merging, &mut scratch, &mut merged);
                    let mut probed = Vec::new();
                    intersect_all_into(&[&b, &s, &m], &probing, &mut scratch, &mut probed);
                    assert_eq!(probed, merged, "{ks:?} x {km:?} x {kb:?}");
                    assert_eq!(
                        count_all_into(&[&m, &b, &s], &probing, &mut scratch),
                        merged.len(),
                        "{ks:?} x {km:?} x {kb:?} count"
                    );
                }
            }
        }
        // 4-way with an empty smallest set: probe path yields nothing.
        let e = mk(&[], Uint);
        let m = mk(&mid_vals, Uint);
        let b = mk(&big_vals, Bitset);
        let b2 = mk(&big_vals, Block);
        let mut out = Vec::new();
        intersect_all_into(&[&b, &m, &e, &b2], &probing, &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(
            count_all_into(&[&b, &m, &e, &b2], &probing, &mut scratch),
            0
        );
    }

    #[test]
    fn values_slice_kernels_match_naive() {
        let cfg = IntersectConfig::default();
        let a: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let b_vals: Vec<u32> = (0..300).map(|i| i * 3).collect();
        let expect = naive(&a, &b_vals);
        for kb in KINDS {
            let b = mk(&b_vals, kb);
            let mut out = Vec::new();
            intersect_values_slice(&a, &b, &cfg, &mut out);
            assert_eq!(out, expect, "slice x {kb:?}");
            assert_eq!(count_values_slice(&a, &b, &cfg), expect.len());
        }
    }

    #[test]
    fn kernel_stats_classify_dispatches() {
        let mut scratch = MultiwayScratch::new();
        let small = mk(&[0, 64, 4_096], Uint);
        let mid_vals: Vec<u32> = (0..2_000).map(|i| i * 3).collect();
        let big_vals: Vec<u32> = (0..6_000).collect();
        let mid = mk(&mid_vals, Uint);
        let big = mk(&big_vals, Uint);
        let full = IntersectConfig::full();
        let merging = IntersectConfig::no_algorithms();
        let mut out = Vec::new();

        // 2-way, balanced uints, optimizer off → merge kernel.
        intersect_all_into(&[&mid, &big], &merging, &mut scratch, &mut out);
        let s = scratch.stats.take();
        assert_eq!((s.intersections, s.merge_kernels), (1, 1));
        assert_eq!((s.gallop_kernels, s.bitset_kernels), (0, 0));

        // 2-way, ≥32:1 skew with the optimizer on → gallop.
        out.clear();
        intersect_all_into(&[&big, &small], &full, &mut scratch, &mut out);
        let s = scratch.stats.take();
        assert_eq!((s.intersections, s.gallop_kernels), (1, 1));

        // 2-way with a bitset participant → bitset family.
        let dense = mk(&big_vals, Bitset);
        out.clear();
        intersect_all_into(&[&mid, &dense], &full, &mut scratch, &mut out);
        let s = scratch.stats.take();
        assert_eq!((s.intersections, s.bitset_kernels), (1, 1));

        // 3-way probe path → one gallop per non-smallest participant.
        out.clear();
        intersect_all_into(&[&big, &small, &mid], &full, &mut scratch, &mut out);
        let s = scratch.stats.take();
        assert_eq!((s.intersections, s.gallop_kernels), (1, 2));

        // 3-way merge chain (optimizer off) → two merge steps, and the
        // count path classifies identically.
        out.clear();
        intersect_all_into(&[&big, &small, &mid], &merging, &mut scratch, &mut out);
        let chained = scratch.stats.take();
        count_all_into(&[&big, &small, &mid], &merging, &mut scratch);
        assert_eq!(scratch.stats.take(), chained);
        assert_eq!(chained.intersections, 1);
        assert_eq!(chained.merge_kernels + chained.gallop_kernels, 2);

        // Stats merge is a plain wrapping fold.
        let mut acc = KernelStats::default();
        acc.merge(&chained);
        acc.merge(&KernelStats::default());
        assert_eq!(acc, chained);
    }

    #[test]
    fn no_algorithms_config_still_correct() {
        let cfg = IntersectConfig::no_algorithms();
        let small = mk(&[5, 500, 50_000], Uint);
        let large_vals: Vec<u32> = (0..=10_000).map(|i| i * 5).collect();
        let large = mk(&large_vals, Uint);
        let r = intersect(&small, &large, &cfg);
        assert_eq!(r.to_vec(), vec![5, 500, 50_000]);
    }
}
