//! Criterion benches for the set-intersection kernels — the measured form
//! of paper Figures 5 and 6 and the §4.2 kernel comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eh_set::{uint, IntersectConfig, LayoutKind, Set};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_set(domain: u32, density: f64, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..domain).filter(|_| rng.gen_bool(density)).collect()
}

/// Figure 5: uint vs bitset across densities.
fn bench_fig5_density_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_density");
    group.sample_size(20);
    let domain = 1 << 18;
    let cfg = IntersectConfig::default();
    for &density in &[1e-3, 1e-2, 1e-1] {
        let a = random_set(domain, density, 1);
        let b = random_set(domain, density, 2);
        for kind in [LayoutKind::Uint, LayoutKind::Bitset] {
            let sa = Set::from_sorted(&a, kind);
            let sb = Set::from_sorted(&b, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), format!("{density:.0e}")),
                &(sa, sb),
                |bch, (sa, sb)| bch.iter(|| eh_set::intersect_count(sa, sb, &cfg)),
            );
        }
    }
    group.finish();
}

/// Figure 6: composite layout on mixed dense/sparse sets.
fn bench_fig6_composite(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_composite");
    group.sample_size(20);
    let cfg = IntersectConfig::default();
    for &card in &[256usize, 4096] {
        let make = |seed: u64| {
            let mut v: Vec<u32> = (0..8192).collect();
            v.extend(
                random_set(1 << 22, card as f64 / (1 << 22) as f64, seed)
                    .iter()
                    .map(|x| x + 8192),
            );
            v
        };
        let a = make(3);
        let b = make(4);
        for kind in [LayoutKind::Uint, LayoutKind::Bitset, LayoutKind::Block] {
            let sa = Set::from_sorted(&a, kind);
            let sb = Set::from_sorted(&b, kind);
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), card),
                &(sa, sb),
                |bch, (sa, sb)| bch.iter(|| eh_set::intersect_count(sa, sb, &cfg)),
            );
        }
    }
    group.finish();
}

/// §4.2 kernel shoot-out: merge vs shuffle vs gallop vs hybrid on uint.
fn bench_uint_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("uint_kernels");
    group.sample_size(20);
    let balanced_a = random_set(1 << 18, 0.01, 5);
    let balanced_b = random_set(1 << 18, 0.01, 6);
    let small = random_set(1 << 18, 0.0002, 7);
    group.bench_function("merge/balanced", |b| {
        b.iter(|| uint::count_merge_scalar(&balanced_a, &balanced_b))
    });
    group.bench_function("shuffle/balanced", |b| {
        b.iter(|| uint::count_shuffle(&balanced_a, &balanced_b))
    });
    group.bench_function("hybrid/balanced", |b| {
        b.iter(|| uint::count_hybrid(&balanced_a, &balanced_b, true))
    });
    group.bench_function("merge/skewed", |b| {
        b.iter(|| uint::count_merge_scalar(&small, &balanced_b))
    });
    group.bench_function("gallop/skewed", |b| {
        b.iter(|| uint::count_gallop(&small, &balanced_b))
    });
    group.bench_function("hybrid/skewed", |b| {
        b.iter(|| uint::count_hybrid(&small, &balanced_b, true))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5_density_sweep,
    bench_fig6_composite,
    bench_uint_kernels
);
criterion_main!(benches);
