//! End-to-end tests for distributed tracing and the slow-query log:
//! spawn real `eh_server` workers on Unix sockets, run the paper-shaped
//! query mix traced and untraced, and assert
//!
//! * the `Trace` frame round-trips a span tree + profile + batch;
//! * a cluster `\trace` stitches every worker's span tree — tagged with
//!   the coordinator's trace id — into one trace with per-worker lanes;
//! * tracing is an observer: traced result batches are **byte-identical**
//!   to untraced ones, serially, under 4 threads, and across 2 shards;
//! * the slow-query log records over the wire and honours `slow_ms`.

use emptyheaded::server::{
    batch_from_result, Cluster, EhClient, Server, ServerOptions, WireDelimiter,
};
use emptyheaded::{Config, CsvOptions, Database};

fn graph_tsv() -> String {
    let mut s = String::from("src:u32\tdst:u32\n");
    for i in 1..=40u32 {
        s.push_str(&format!("0\t{i}\n{i}\t0\n"));
    }
    for i in 1..=10u32 {
        for j in 1..=10u32 {
            if i != j && (i * 7 + j * 3) % 5 == 0 {
                s.push_str(&format!("{i}\t{j}\n"));
            }
        }
    }
    s
}

const QUERIES: &[&str] = &[
    "T(x,y,z) :- G(x,y),G(y,z),G(z,x).",
    "C(;w:long) :- G(x,y),G(y,z),G(z,x); w=<<COUNT(*)>>.",
    "P(x,z) :- G(x,y),G(y,z).",
    "A(y) :- G('0',y).",
];

fn reference_db() -> Database {
    let mut db = Database::new();
    db.load_csv_reader("G", std::io::Cursor::new(graph_tsv()), &CsvOptions::tsv())
        .unwrap();
    db
}

fn expected_bytes(db: &Database, query: &str) -> Vec<u8> {
    let stmt = db.prepare(query).expect("reference prepare");
    let result = stmt
        .execute_with(db, &Config::default())
        .expect("reference execute");
    batch_from_result(db, &result).encode().expect("encode")
}

fn spawn_workers(n: usize) -> (Vec<Server>, Vec<String>) {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let sock = std::env::temp_dir().join(format!(
            "eh_trace_{}_{}.sock",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let addr = format!("unix:{}", sock.display());
        let server =
            Server::bind(Database::new(), &[&addr], ServerOptions::default()).expect("bind worker");
        let mut loader = EhClient::connect(&addr).expect("connect loader");
        loader
            .load_csv("G", WireDelimiter::Tab, graph_tsv().into_bytes())
            .expect("load G");
        loader.quit().expect("loader quit");
        servers.push(server);
        addrs.push(addr);
    }
    (servers, addrs)
}

#[test]
fn trace_exec_round_trips_spans_profile_and_batch() {
    let reference = reference_db();
    let (servers, addrs) = spawn_workers(1);
    let mut client = EhClient::connect(&addrs[0]).expect("connect");

    for q in QUERIES {
        let expected = expected_bytes(&reference, q);
        // Tracing on: span tree + profile + byte-identical rows.
        let traced = client.trace_exec(q, true).expect("trace_exec");
        assert_eq!(traced.result.raw_bytes(), &expected[..], "traced: {q}");
        let trace = traced.trace.expect("preparable plans profile");
        assert_ne!(trace.trace_id, 0, "server mints a real trace id");
        let rendered = trace.render();
        assert!(rendered.contains("kernels:"), "{rendered}");
        assert!(rendered.contains("node 0"), "{rendered}");
        let profile = traced.profile.expect("profile rides along");
        assert_eq!(profile.rows, reference_rows(&expected) as u64);
        // Tracing off (`\explain` remote): profile only, same bytes.
        let explained = client.trace_exec(q, false).expect("trace_exec off");
        assert!(explained.trace.is_none(), "trace only when asked");
        assert!(explained.profile.is_some());
        assert_eq!(explained.result.raw_bytes(), &expected[..]);
    }

    // Multi-rule programs take the read-only path; whether or not that
    // path yields a profile, the rows must be exact and any trace that
    // does come back must be well-formed.
    let program = "H(x,z) :- G(x,y),G(y,z). F(z) :- H('0',z).";
    let out = client.trace_exec(program, true).expect("program trace");
    if let Some(t) = &out.trace {
        assert_ne!(t.trace_id, 0);
    }
    let result = reference.query_ref(program).expect("reference program");
    let expected = batch_from_result(&reference, &result)
        .encode()
        .expect("encode");
    assert_eq!(out.result.raw_bytes(), &expected[..]);

    client.quit().expect("quit");
    for s in servers {
        s.shutdown();
    }
}

/// Row count of an encoded reference batch (for cross-checking the
/// profile's `rows` field without re-executing).
fn reference_rows(bytes: &[u8]) -> usize {
    emptyheaded::storage::wire::ResultBatch::decode(bytes)
        .expect("reference batch decodes")
        .num_rows()
}

#[test]
fn cluster_trace_stitches_worker_lanes_tagged_with_one_id() {
    let reference = reference_db();
    let (servers, addrs) = spawn_workers(2);
    let mut cluster = Cluster::connect(&addrs).expect("cluster connect");
    // Threshold 0 on every worker: each traced scatter lands in each
    // worker's slow-query ring, tagged with the coordinator's id.
    cluster
        .set_option("slow_ms", "0")
        .expect("broadcast slow_ms");

    let q = "T(x,y,z) :- G(x,y),G(y,z),G(z,x).";
    let expected = expected_bytes(&reference, q);
    let (trace, rs) = cluster.trace(q).expect("cluster trace");
    assert_eq!(rs.raw_bytes(), &expected[..], "traced scatter diverged");
    assert_ne!(trace.trace_id, 0);

    // One stitched tree: coordinator spans + one lane per worker, each
    // holding that worker's own span tree (shard-named root).
    let rendered = trace.render();
    for needle in [
        "scatter",
        "worker 0",
        "worker 1",
        "shard 0/2",
        "shard 1/2",
        "merge",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
    assert!(trace.root.span_count() > 6, "{rendered}");

    // The untraced path returns the same bytes (tracing only observes).
    let untraced = cluster.query(q).expect("untraced scatter");
    assert_eq!(untraced.raw_bytes(), &expected[..]);

    // Worker slow logs saw the traced scatter: sharded entries tagged
    // with the coordinator's trace id.
    for (k, entries) in cluster.slow_log(16).expect("cluster slow log") {
        assert!(
            entries
                .iter()
                .any(|e| e.trace_id == trace.trace_id && e.sharded),
            "worker {k} missing the traced scatter: {entries:?}"
        );
    }

    // Direct shard_exec with an explicit id: the worker's span tree
    // comes home tagged with exactly that id.
    let mut direct = EhClient::connect(&addrs[0]).expect("connect worker 0");
    let outcome = direct
        .shard_exec(q, 0, 2, Some(0xABCD_1234_5678_9000))
        .expect("direct traced shard");
    let worker_trace = outcome.trace.expect("traced shard ships its spans");
    assert_eq!(worker_trace.trace_id, 0xABCD_1234_5678_9000);
    assert!(worker_trace.render().contains("shard 0/2"));
    // And without an id the tail stays off the wire entirely.
    let untagged = direct.shard_exec(q, 0, 2, None).expect("untraced shard");
    assert!(untagged.trace.is_none());
    assert_eq!(untagged.result.raw_bytes(), outcome.result.raw_bytes());
    direct.quit().expect("quit");

    cluster.quit().expect("cluster quit");
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn tracing_is_byte_identical_serial_threaded_and_sharded() {
    let db = reference_db();
    // Serial and 4-thread embedded execution: profile on vs off.
    for threads in [1usize, 4] {
        let cfg = Config::default().with_threads(threads);
        for q in QUERIES {
            let stmt = db.prepare(q).expect("prepare");
            let plain = stmt.execute_with(&db, &cfg).expect("plain");
            let traced = stmt
                .execute_with(&db, &cfg.with_profile(true))
                .expect("traced");
            assert!(traced.profile().is_some(), "profile rides along: {q}");
            let plain_bytes = batch_from_result(&db, &plain).encode().unwrap();
            let traced_bytes = batch_from_result(&db, &traced).encode().unwrap();
            assert_eq!(plain_bytes, traced_bytes, "threads={threads}: {q}");
        }
    }
    // 2-shard scatter: traced and untraced gathers agree byte-for-byte
    // with in-process execution.
    let (servers, addrs) = spawn_workers(2);
    let mut cluster = Cluster::connect(&addrs).expect("cluster connect");
    for q in QUERIES {
        let expected = expected_bytes(&db, q);
        assert_eq!(cluster.query(q).expect("query").raw_bytes(), &expected[..]);
        let (_, rs) = cluster.trace(q).expect("trace");
        assert_eq!(rs.raw_bytes(), &expected[..], "traced shards: {q}");
    }
    cluster.quit().expect("cluster quit");
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn slow_query_log_records_over_the_wire() {
    let (servers, addrs) = spawn_workers(1);
    let mut client = EhClient::connect(&addrs[0]).expect("connect");

    // Default threshold is 10 ms: toy queries stay out of the ring.
    client.query(QUERIES[0]).expect("warm query");
    assert!(client.slow_log(8).expect("slow log").is_empty());

    // Threshold 0 retains everything; entries come back newest first
    // with the query text and row counts.
    assert_eq!(
        client.set_option("slow_ms", "0").expect("set"),
        "slow_ms = 0"
    );
    for q in QUERIES {
        client.query(q).expect("query");
    }
    let traced = client.trace_exec(QUERIES[1], true).expect("trace");
    let entries = client.slow_log(32).expect("slow log");
    assert_eq!(entries.len(), QUERIES.len() + 1);
    assert!(entries[0].query.contains("COUNT"), "{entries:?}");
    assert_eq!(
        entries[0].trace_id,
        traced.trace.expect("traced").trace_id,
        "traced executions log under their trace id"
    );
    assert_ne!(entries[0].hot_span, "-", "profiled entries name a hot span");
    assert_eq!(entries[1].trace_id, 0, "plain queries log untraced");
    assert!(entries.iter().all(|e| !e.sharded));
    // The limit clips from the newest end.
    assert_eq!(client.slow_log(2).expect("slow log").len(), 2);
    // Render is the stable `slow:`-prefixed single line the shell prints.
    assert!(
        entries[0].render().starts_with("slow: trace="),
        "{entries:?}"
    );

    // Bad threshold values are rejected server-side, session intact.
    let err = client.set_option("slow_ms", "fast").unwrap_err();
    assert!(err.to_string().contains("slow_ms wants a number"), "{err}");
    assert_eq!(
        client.set_option("slow_ms", "25").expect("set"),
        "slow_ms = 25"
    );

    client.quit().expect("quit");
    for s in servers {
        s.shutdown();
    }
}
