//! The `bitset` layout: a sequence of `(offset, 256-bit block)` pairs
//! (paper Figure 4).
//!
//! The offsets are packed contiguously and are themselves a `uint` set of
//! block ids, so offset intersection reuses the uint kernels; matching
//! blocks are then combined with SIMD `AND` (paper §4.2 "BITSET ∩ BITSET").
//! A rank directory (cumulative popcounts per block) supports O(1)-ish rank
//! queries for trie child addressing.

use crate::simd;
use crate::{bit_of, block_of, Block, BLOCK_BITS, BLOCK_WORDS};

/// Bitset layout: parallel arrays of block offsets and 256-bit blocks.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BitsetSet {
    /// Sorted block ids (the `o1..on` offsets of Figure 4).
    offsets: Vec<u32>,
    /// 256-bit bitvector per offset (the `b1..bn` blocks of Figure 4).
    blocks: Vec<Block>,
    /// `ranks[i]` = number of set bits in blocks `0..i` (exclusive prefix).
    ranks: Vec<u32>,
    /// Total cardinality.
    card: usize,
}

impl BitsetSet {
    /// Build from sorted, deduplicated values.
    pub fn from_sorted(values: &[u32]) -> BitsetSet {
        let mut offsets = Vec::new();
        let mut blocks: Vec<Block> = Vec::new();
        for &v in values {
            let blk = block_of(v);
            if offsets.last() != Some(&blk) {
                offsets.push(blk);
                blocks.push([0u64; BLOCK_WORDS]);
            }
            let bit = bit_of(v);
            blocks.last_mut().unwrap()[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        let mut ranks = Vec::with_capacity(offsets.len());
        let mut acc = 0u32;
        for b in &blocks {
            ranks.push(acc);
            acc += simd::block_count(b);
        }
        BitsetSet {
            offsets,
            blocks,
            ranks,
            card: acc as usize,
        }
    }

    /// Construct directly from parts (used by intersection kernels).
    pub(crate) fn from_parts(offsets: Vec<u32>, blocks: Vec<Block>) -> BitsetSet {
        debug_assert_eq!(offsets.len(), blocks.len());
        let mut ranks = Vec::with_capacity(offsets.len());
        let mut acc = 0u32;
        for b in &blocks {
            ranks.push(acc);
            acc += simd::block_count(b);
        }
        BitsetSet {
            offsets,
            blocks,
            ranks,
            card: acc as usize,
        }
    }

    /// Sorted block ids.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Blocks parallel to [`Self::offsets`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.card
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.card == 0
    }

    /// Heap bytes (offsets + blocks + rank directory).
    pub fn bytes(&self) -> usize {
        self.offsets.len() * 4 + self.blocks.len() * BLOCK_WORDS * 8 + self.ranks.len() * 4
    }

    /// Index of the block with id `blk`, if present.
    #[inline]
    fn block_index(&self, blk: u32) -> Option<usize> {
        self.offsets.binary_search(&blk).ok()
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        match self.block_index(block_of(v)) {
            Some(i) => {
                let bit = bit_of(v);
                self.blocks[i][(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
            }
            None => false,
        }
    }

    /// Rank of `v` given that block index `i` holds `v`'s block (cursor
    /// support for `Set::rank_hinted`).
    pub(crate) fn rank_in_block(&self, i: usize, v: u32) -> Option<usize> {
        debug_assert_eq!(self.offsets[i], block_of(v));
        let bit = bit_of(v);
        let word = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        let blk = &self.blocks[i];
        if blk[word] & mask == 0 {
            return None;
        }
        let mut r = self.ranks[i];
        for w in 0..word {
            r += blk[w].count_ones();
        }
        r += (blk[word] & (mask - 1)).count_ones();
        Some(r as usize)
    }

    /// Rank of `v` (its index in ascending order), if present.
    pub fn rank(&self, v: u32) -> Option<usize> {
        let i = self.block_index(block_of(v))?;
        let bit = bit_of(v);
        let word = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        let blk = &self.blocks[i];
        if blk[word] & mask == 0 {
            return None;
        }
        let mut r = self.ranks[i];
        for w in 0..word {
            r += blk[w].count_ones();
        }
        r += (blk[word] & (mask - 1)).count_ones();
        Some(r as usize)
    }

    /// Largest value, if any.
    pub fn max(&self) -> Option<u32> {
        let i = self.blocks.len().checked_sub(1)?;
        let base = self.offsets[i] * BLOCK_BITS;
        let blk = &self.blocks[i];
        for w in (0..BLOCK_WORDS).rev() {
            if blk[w] != 0 {
                return Some(base + w as u32 * 64 + 63 - blk[w].leading_zeros());
            }
        }
        None
    }

    /// Iterate values in ascending order.
    pub fn iter(&self) -> BitsetIter<'_> {
        BitsetIter {
            set: self,
            block: 0,
            word: 0,
            bits: if self.blocks.is_empty() {
                0
            } else {
                self.blocks[0][0]
            },
        }
    }
}

/// Ascending-order iterator over a [`BitsetSet`].
pub struct BitsetIter<'a> {
    set: &'a BitsetSet,
    block: usize,
    word: usize,
    bits: u64,
}

impl Iterator for BitsetIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        loop {
            if self.block >= self.set.blocks.len() {
                return None;
            }
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                let base = self.set.offsets[self.block] * BLOCK_BITS;
                return Some(base + self.word as u32 * 64 + tz);
            }
            self.word += 1;
            if self.word == BLOCK_WORDS {
                self.word = 0;
                self.block += 1;
                if self.block >= self.set.blocks.len() {
                    return None;
                }
            }
            self.bits = self.set.blocks[self.block][self.word];
        }
    }
}

/// bitset ∩ bitset: intersect the offset arrays with the uint kernel, then
/// AND matching blocks (dropping blocks that come out empty).
pub fn intersect_bitset_bitset(a: &BitsetSet, b: &BitsetSet, simd_on: bool) -> BitsetSet {
    let mut offsets = Vec::new();
    let mut blocks = Vec::new();
    for_common_blocks(a, b, |blk, ba, bb| {
        let anded = if simd_on {
            simd::and_block(ba, bb)
        } else {
            simd::and_block_scalar(ba, bb)
        };
        if anded.iter().any(|w| *w != 0) {
            offsets.push(blk);
            blocks.push(anded);
        }
    });
    BitsetSet::from_parts(offsets, blocks)
}

/// Count-only bitset ∩ bitset (AND + popcount, no materialization).
pub fn count_bitset_bitset(a: &BitsetSet, b: &BitsetSet) -> usize {
    let mut n = 0usize;
    for_common_blocks(a, b, |_, ba, bb| {
        n += simd::and_block_count(ba, bb) as usize;
    });
    n
}

/// Merge-walk the two offset arrays invoking `f` on each common block.
#[inline]
fn for_common_blocks<'a>(
    a: &'a BitsetSet,
    b: &'a BitsetSet,
    mut f: impl FnMut(u32, &'a Block, &'a Block),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.offsets.len() && j < b.offsets.len() {
        let (x, y) = (a.offsets[i], b.offsets[j]);
        if x == y {
            f(x, &a.blocks[i], &b.blocks[j]);
            i += 1;
            j += 1;
        } else if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// uint ∩ bitset: probe each uint value's block (masking low bits, paper
/// §4.2 "UINT ∩ BITSET"); the result is stored as uint since an intersection
/// is at most as dense as its sparser input.
pub fn intersect_uint_bitset(a: &[u32], b: &BitsetSet, out: &mut Vec<u32>) {
    // Walk uint values and the offset array in tandem; the offset array is
    // sorted so we only move forward (this is the min-property guarantee:
    // cost ∝ |a| + #blocks visited).
    let mut j = 0usize;
    for &v in a {
        let blk = block_of(v);
        while j < b.offsets.len() && b.offsets[j] < blk {
            j += 1;
        }
        if j == b.offsets.len() {
            break;
        }
        if b.offsets[j] == blk {
            let bit = bit_of(v);
            if b.blocks[j][(bit / 64) as usize] & (1u64 << (bit % 64)) != 0 {
                out.push(v);
            }
        }
    }
}

/// Count-only uint ∩ bitset.
pub fn count_uint_bitset(a: &[u32], b: &BitsetSet) -> usize {
    let mut j = 0usize;
    let mut n = 0usize;
    for &v in a {
        let blk = block_of(v);
        while j < b.offsets.len() && b.offsets[j] < blk {
            j += 1;
        }
        if j == b.offsets.len() {
            break;
        }
        if b.offsets[j] == blk {
            let bit = bit_of(v);
            if b.blocks[j][(bit / 64) as usize] & (1u64 << (bit % 64)) != 0 {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(vals: &[u32]) -> BitsetSet {
        BitsetSet::from_sorted(vals)
    }

    #[test]
    fn roundtrip() {
        let vals = vec![0, 1, 63, 64, 255, 256, 300, 511, 512, 100_000];
        let s = bs(&vals);
        assert_eq!(s.iter().collect::<Vec<_>>(), vals);
        assert_eq!(s.len(), vals.len());
        assert_eq!(s.max(), Some(100_000));
    }

    #[test]
    fn contains_and_rank() {
        let vals = vec![3, 64, 255, 256, 700];
        let s = bs(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert!(s.contains(v));
            assert_eq!(s.rank(v), Some(i));
        }
        assert!(!s.contains(4));
        assert_eq!(s.rank(4), None);
        assert!(!s.contains(10_000));
    }

    #[test]
    fn empty() {
        let s = bs(&[]);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn bitset_and_bitset() {
        let a = bs(&[1, 2, 3, 300, 301, 600]);
        let b = bs(&[2, 3, 4, 301, 999]);
        let r = intersect_bitset_bitset(&a, &b, true);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 301]);
        assert_eq!(count_bitset_bitset(&a, &b), 3);
        let r2 = intersect_bitset_bitset(&a, &b, false);
        assert_eq!(r2, r);
    }

    #[test]
    fn empty_blocks_dropped() {
        let a = bs(&[1, 300]);
        let b = bs(&[2, 300]);
        let r = intersect_bitset_bitset(&a, &b, true);
        assert_eq!(r.offsets().len(), 1, "block 0 ANDs to zero and is dropped");
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![300]);
    }

    #[test]
    fn uint_and_bitset() {
        let a = vec![2, 5, 301, 999, 5000];
        let b = bs(&[2, 3, 301, 5000, 5001]);
        let mut out = Vec::new();
        intersect_uint_bitset(&a, &b, &mut out);
        assert_eq!(out, vec![2, 301, 5000]);
        assert_eq!(count_uint_bitset(&a, &b), 3);
    }

    #[test]
    fn uint_and_bitset_disjoint() {
        let a = vec![10_000, 20_000];
        let b = bs(&[1, 2, 3]);
        let mut out = Vec::new();
        intersect_uint_bitset(&a, &b, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn dense_block_full() {
        let vals: Vec<u32> = (256..512).collect();
        let s = bs(&vals);
        assert_eq!(s.offsets(), &[1]);
        assert_eq!(s.len(), 256);
        assert_eq!(s.rank(256), Some(0));
        assert_eq!(s.rank(511), Some(255));
    }
}
