//! Semiring annotations for EmptyHeaded tries (paper §2.3, §3.2).
//!
//! Following Green et al.'s provenance semirings, every tuple in an
//! EmptyHeaded trie may carry an *annotation* drawn from a commutative
//! semiring `(K, ⊕, ⊗, 0, 1)`. Joins multiply annotations (`⊗`), and
//! projecting an attribute away sums the annotations of the collapsed
//! tuples (`⊕`). This one mechanism expresses COUNT, SUM, MIN, MAX,
//! boolean provenance, and even matrix multiplication (paper Table 1 and
//! Appendix A.2).

pub mod ops;

pub use ops::{AggOp, DynValue};

/// A commutative semiring over the annotation type `Self`.
///
/// Laws (checked by property tests in this crate):
/// - `(K, plus, zero)` is a commutative monoid,
/// - `(K, times, one)` is a commutative monoid,
/// - `times` distributes over `plus`,
/// - `zero` annihilates: `times(zero, x) == zero`.
pub trait Semiring: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Additive identity (the annotation of "no derivations").
    const ZERO: Self;
    /// Multiplicative identity (the default annotation of a base tuple).
    const ONE: Self;
    /// The semiring addition `⊕`, applied when tuples are merged by projection.
    fn plus(self, other: Self) -> Self;
    /// The semiring multiplication `⊗`, applied when tuples are joined.
    fn times(self, other: Self) -> Self;
}

/// The counting semiring `(u64, +, ×, 0, 1)`; `COUNT(*)` is projection of
/// everything in this semiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Count(pub u64);

impl Semiring for Count {
    const ZERO: Self = Count(0);
    const ONE: Self = Count(1);
    #[inline]
    fn plus(self, other: Self) -> Self {
        Count(self.0.wrapping_add(other.0))
    }
    #[inline]
    fn times(self, other: Self) -> Self {
        Count(self.0.wrapping_mul(other.0))
    }
}

/// The real semiring `(f64, +, ×, 0, 1)`; used by PageRank (SUM aggregate,
/// annotations multiplied across joined relations — a matrix-vector product).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SumF64(pub f64);

impl Semiring for SumF64 {
    const ZERO: Self = SumF64(0.0);
    const ONE: Self = SumF64(1.0);
    #[inline]
    fn plus(self, other: Self) -> Self {
        SumF64(self.0 + other.0)
    }
    #[inline]
    fn times(self, other: Self) -> Self {
        SumF64(self.0 * other.0)
    }
}

/// The tropical (min-plus) semiring `(u32 ∪ {∞}, min, +, ∞, 0)`; SSSP's
/// `MIN(w)+1` recursion is a fixpoint in this semiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MinPlus(pub u32);

impl MinPlus {
    /// The additive identity: "unreachable".
    pub const INF: MinPlus = MinPlus(u32::MAX);

    /// True when this distance is the additive identity.
    pub fn is_inf(self) -> bool {
        self.0 == u32::MAX
    }
}

impl Semiring for MinPlus {
    const ZERO: Self = MinPlus(u32::MAX);
    const ONE: Self = MinPlus(0);
    #[inline]
    fn plus(self, other: Self) -> Self {
        MinPlus(self.0.min(other.0))
    }
    #[inline]
    fn times(self, other: Self) -> Self {
        MinPlus(self.0.saturating_add(other.0))
    }
}

/// The max-times semiring over non-negative reals; used for e.g. widest-path
/// style aggregations and as the `MAX` aggregate carrier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaxF64(pub f64);

impl Semiring for MaxF64 {
    const ZERO: Self = MaxF64(f64::NEG_INFINITY);
    const ONE: Self = MaxF64(1.0);
    #[inline]
    fn plus(self, other: Self) -> Self {
        MaxF64(if self.0 >= other.0 { self.0 } else { other.0 })
    }
    #[inline]
    fn times(self, other: Self) -> Self {
        MaxF64(self.0 * other.0)
    }
}

/// The boolean semiring `({0,1}, ∨, ∧)`; plain relational semantics
/// (set existence / reachability).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    const ZERO: Self = Bool(false);
    const ONE: Self = Bool(true);
    #[inline]
    fn plus(self, other: Self) -> Self {
        Bool(self.0 || other.0)
    }
    #[inline]
    fn times(self, other: Self) -> Self {
        Bool(self.0 && other.0)
    }
}

/// Fold an iterator of annotations with `⊕`, starting from `ZERO`.
pub fn sum_all<S: Semiring, I: IntoIterator<Item = S>>(iter: I) -> S {
    iter.into_iter().fold(S::ZERO, S::plus)
}

/// Fold an iterator of annotations with `⊗`, starting from `ONE`.
pub fn product_all<S: Semiring, I: IntoIterator<Item = S>>(iter: I) -> S {
    iter.into_iter().fold(S::ONE, S::times)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<S: Semiring>(vals: &[S]) {
        for &a in vals {
            assert_eq!(a.plus(S::ZERO), a, "zero is additive identity");
            assert_eq!(a.times(S::ONE), a, "one is multiplicative identity");
            assert_eq!(a.times(S::ZERO), S::ZERO, "zero annihilates");
            for &b in vals {
                assert_eq!(a.plus(b), b.plus(a), "plus commutes");
                assert_eq!(a.times(b), b.times(a), "times commutes");
                for &c in vals {
                    assert_eq!(a.plus(b).plus(c), a.plus(b.plus(c)), "plus assoc");
                    assert_eq!(a.times(b).times(c), a.times(b.times(c)), "times assoc");
                    assert_eq!(
                        a.times(b.plus(c)),
                        a.times(b).plus(a.times(c)),
                        "distributivity"
                    );
                }
            }
        }
    }

    #[test]
    fn count_laws() {
        check_laws(&[Count(0), Count(1), Count(2), Count(7), Count(100)]);
    }

    #[test]
    fn minplus_laws() {
        check_laws(&[
            MinPlus::INF,
            MinPlus(0),
            MinPlus(1),
            MinPlus(5),
            MinPlus(1000),
        ]);
    }

    #[test]
    fn bool_laws() {
        check_laws(&[Bool(false), Bool(true)]);
    }

    #[test]
    fn sumf64_identities() {
        let a = SumF64(2.5);
        assert_eq!(a.plus(SumF64::ZERO), a);
        assert_eq!(a.times(SumF64::ONE), a);
        assert_eq!(a.plus(SumF64(1.5)), SumF64(4.0));
        assert_eq!(a.times(SumF64(2.0)), SumF64(5.0));
    }

    #[test]
    fn maxf64_behaviour() {
        assert_eq!(MaxF64(3.0).plus(MaxF64(4.0)), MaxF64(4.0));
        assert_eq!(MaxF64(3.0).times(MaxF64(2.0)), MaxF64(6.0));
        assert_eq!(MaxF64(3.0).plus(MaxF64::ZERO), MaxF64(3.0));
    }

    #[test]
    fn fold_helpers() {
        assert_eq!(sum_all([Count(1), Count(2), Count(3)]), Count(6));
        assert_eq!(product_all([Count(2), Count(3)]), Count(6));
        assert_eq!(sum_all::<Count, _>([]), Count(0));
        assert_eq!(product_all::<Count, _>([]), Count(1));
        assert_eq!(sum_all([MinPlus(4), MinPlus(2), MinPlus(9)]), MinPlus(2));
        assert_eq!(product_all([MinPlus(4), MinPlus(2)]), MinPlus(6));
    }

    #[test]
    fn sssp_as_minplus() {
        // d(v) = min over in-neighbours u of d(u) + 1 — one relaxation step
        // is plus-over-times in the tropical semiring.
        let du = [MinPlus(3), MinPlus(7), MinPlus::INF];
        let step = sum_all(du.iter().map(|d| d.times(MinPlus(1))));
        assert_eq!(step, MinPlus(4));
    }

    #[test]
    fn inf_saturates() {
        assert_eq!(MinPlus::INF.times(MinPlus(1)), MinPlus::INF);
        assert!(MinPlus::INF.is_inf());
        assert!(!MinPlus(3).is_inf());
    }
}
