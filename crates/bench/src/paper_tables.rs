//! Regenerate every table and figure of the paper's evaluation (§4–§5,
//! Appendix A/B) on the synthetic dataset analogs.
//!
//! ```sh
//! cargo run --release --bin paper_tables -- all
//! cargo run --release --bin paper_tables -- table5 --scale 0.1
//! ```
//!
//! Absolute times differ from the paper (48-core Xeon vs this machine,
//! real graphs vs analogs); the *relative* structure — who wins, by
//! roughly what factor, where the crossovers fall — is the reproduction
//! target. See EXPERIMENTS.md for the side-by-side record.

use crate::{measure, measure_median, measure_once, queries, ratio, secs, PreparedQuery, Table};
use eh_core::{Config, Database, Scheduler};
use eh_graph::{apply_ordering, compute_ordering, gen, paper_datasets, Graph, OrderingScheme};
use eh_semiring::{AggOp, DynValue};
use eh_set::{IntersectConfig, LayoutKind, Set};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const TARGETS: &str =
    "fig5|fig6|fig7|table3|table4|table5|table6|table7|table8|table9|table10|table11|table13|skew|loaded|storage-smoke|bench-trajectory|all";

/// `--threads N` override applied to every engine config in this run
/// (None = flag absent, keep each config's default of 1 worker).
static THREADS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();

/// `--morsel N` override: pins the morsel size on every engine config
/// (None = flag absent, auto-size).
static MORSEL: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();

/// `--profile`: bench-trajectory additionally runs each query once under
/// `Config::profile` and records the observed work counters alongside
/// the medians in the `--json` output. Medians themselves are always
/// measured with profiling off, so profile-bearing documents stay
/// comparable with pre-profile baselines.
static PROFILE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();

/// Machine-readable timing sink, enabled by `--json <path>`; human
/// output is unchanged whether or not it is active.
static JSON_SINK: std::sync::OnceLock<std::sync::Mutex<Vec<String>>> = std::sync::OnceLock::new();

/// Record one measurement into the `--json` sink (no-op without it).
fn record(table: &str, dataset: &str, query: &str, config: &str, time: Duration, rows: u64) {
    record_with_work(table, dataset, query, config, time, rows, None);
}

/// [`record`] with optional observed-work counters (`--profile` runs).
/// The extra keys are unknown to older `eh_bench --compare` parsers by
/// design: the comparator skips fields it does not recognize.
fn record_with_work(
    table: &str,
    dataset: &str,
    query: &str,
    config: &str,
    time: Duration,
    rows: u64,
    work: Option<&eh_core::WorkCounters>,
) {
    let Some(sink) = JSON_SINK.get() else { return };
    let mut entry = format!(
        "{{\"table\":{},\"dataset\":{},\"query\":{},\"config\":{},\"median_us\":{},\"rows\":{}",
        json_str(table),
        json_str(dataset),
        json_str(query),
        json_str(config),
        time.as_micros(),
        rows
    );
    if let Some(w) = work {
        let _ = write!(
            entry,
            ",\"values_scanned\":{},\"intersections\":{},\"merge_kernels\":{},\"gallop_kernels\":{},\"bitset_kernels\":{},\"count_fast_hits\":{},\"relayouts\":{}",
            w.values_scanned,
            w.intersections,
            w.merge_kernels,
            w.gallop_kernels,
            w.bitset_kernels,
            w.count_fast_hits,
            w.relayouts
        );
    }
    entry.push('}');
    sink.lock().expect("json sink").push(entry);
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write the accumulated `--json` entries to `path`.
fn flush_json(path: &str, scale: f64) {
    let Some(sink) = JSON_SINK.get() else { return };
    let entries = sink.lock().expect("json sink");
    let body = entries.join(",\n    ");
    let doc = format!("{{\n  \"scale\": {scale},\n  \"entries\": [\n    {body}\n  ]\n}}\n");
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("failed to write --json output to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} timing entries to {path}", entries.len());
}

/// Apply the run-wide `--threads` pin to a config, so benchmark numbers
/// are reproducible on shared machines regardless of core count.
fn tuned(cfg: Config) -> Config {
    let cfg = match THREADS.get().copied().flatten() {
        Some(n) => cfg.with_threads(n),
        None => cfg,
    };
    match MORSEL.get().copied().flatten() {
        Some(m) => cfg.with_morsel(m),
        None => cfg,
    }
}

pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale = flag("--scale")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.1);
    let threads = flag("--threads").and_then(|s| s.parse::<usize>().ok());
    let _ = THREADS.set(threads);
    let morsel = flag("--morsel").and_then(|s| s.parse::<usize>().ok());
    let _ = MORSEL.set(morsel);
    let load = flag("--load");
    let json = flag("--json");
    let _ = PROFILE.set(args.iter().any(|a| a == "--profile"));
    if json.is_some() {
        let _ = JSON_SINK.set(std::sync::Mutex::new(Vec::new()));
    }
    // `--load` without an explicit target runs the paper's queries over
    // the external dataset.
    let which = match args.first().map(String::as_str) {
        // `--help` anywhere must reach the help arm, not fall through to
        // a full `all` run.
        _ if args.iter().any(|a| a == "--help" || a == "-h") => "--help",
        Some(w) if !w.starts_with("--") => w,
        _ if load.is_some() => "loaded",
        _ => "all",
    };
    let reps = 3;
    match which {
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "table3" => table3(scale),
        "table4" => table4(scale),
        "table5" => table5(scale, reps),
        "table6" => table6(scale, reps),
        "table7" => table7(scale, reps),
        "table8" => table8(scale),
        "table9" => table9(scale),
        "table10" => table10(scale),
        "table11" => table11(scale),
        "table13" => table13(scale),
        "skew" => skew(scale, reps),
        "bench-trajectory" => bench_trajectory(scale),
        "loaded" => loaded_tables(load.as_deref(), reps),
        "storage-smoke" => storage_smoke(load.as_deref()),
        "all" => {
            fig5();
            fig6();
            table3(scale);
            table4(scale);
            table5(scale, reps);
            table6(scale, reps);
            table7(scale, reps);
            table8(scale);
            table9(scale);
            fig7();
            table10(scale);
            table11(scale);
            table13(scale);
            skew(scale, reps);
        }
        "--help" | "-h" | "help" => {
            println!(
                "usage: paper_tables [{TARGETS}] [--scale S] [--threads N] [--morsel M] [--load PATH] [--json PATH] [--profile]"
            );
            println!();
            println!("Regenerates the paper's evaluation tables/figures on synthetic");
            println!("dataset analogs. --scale (default 0.1) shrinks the generated");
            println!("graphs; use 1.0 for full-size runs. --threads pins the engine's");
            println!("worker count (0 = auto-detect) so runs on shared machines are");
            println!("reproducible; default is 1 (serial). --morsel pins the morsel");
            println!("size of the parallel level-0 scheduler (0 = auto-size).");
            println!();
            println!("The 'skew' target generates a preferential-attachment power-law");
            println!("graph and compares serial vs static-partition vs morsel-driven");
            println!("triangle counting; it exits non-zero if any scheduler disagrees");
            println!("with the serial answer (the CI skew-smoke gate).");
            println!();
            println!("--load PATH runs the paper's pattern queries over an external");
            println!("dataset instead: either a text edge list (whitespace/TSV, '#'");
            println!("comments) or a saved database image ('EHDB' magic; see the");
            println!("storage-smoke target, which also saves/reopens an image and");
            println!("checks the reload answers queries identically).");
            println!("--json PATH additionally writes per-table timing entries");
            println!("(table, dataset, query, config, median_us, rows) as JSON.");
            println!();
            println!("The 'bench-trajectory' target runs the fixed query suite behind");
            println!("the committed BENCH_*.json performance baselines (medians, adaptive");
            println!("vs static layouts); gate regressions with");
            println!("  eh_bench --compare BENCH_OLD.json new.json");
            println!("--profile additionally runs each trajectory query once under");
            println!("Config::profile and records observed-work counters (values");
            println!("scanned, intersections, kernel picks) next to each median in");
            println!("the --json document; medians stay measured with profiling off.");
        }
        other => {
            eprintln!("unknown target '{other}'; use {TARGETS} (or --help)");
            std::process::exit(2);
        }
    }
    if let Some(path) = json {
        flush_json(&path, scale);
    }
}

// ------------------------------------------------------- external datasets

/// Build a database from `--load`: a saved database image (sniffed by
/// its `EHDB` magic) or a text edge list registered as `Edge`.
fn load_external(path: &str) -> Database {
    use std::io::Read;
    let mut magic = [0u8; 4];
    let is_image = std::fs::File::open(path)
        .map(|mut f| matches!(f.read_exact(&mut magic), Ok(())) && magic == eh_storage::IMAGE_MAGIC)
        .unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(2);
        });
    if is_image {
        let db = Database::open_with_config(path, tuned(Config::default())).unwrap_or_else(|e| {
            eprintln!("cannot load image {path}: {e}");
            std::process::exit(2);
        });
        if db.relation("Edge").is_none() {
            eprintln!("image {path} has no 'Edge' relation; the paper queries need one");
            std::process::exit(2);
        }
        db
    } else {
        let g = Graph::from_edge_list_path(path).unwrap_or_else(|e| {
            eprintln!("cannot parse edge list {path}: {e}");
            std::process::exit(2);
        });
        let mut db = Database::with_config(tuned(Config::default()));
        db.load_graph("Edge", &g);
        db
    }
}

/// The paper's pattern queries over an external dataset (`--load`).
fn loaded_tables(load: Option<&str>, reps: usize) {
    let Some(path) = load else {
        eprintln!("the 'loaded' target needs --load <path>");
        std::process::exit(2);
    };
    let db = load_external(path);
    let edges = db.relation("Edge").map(|r| r.len()).unwrap_or(0);
    println!("\n== Paper queries on {path} ({edges} edges) ==");
    let t = Table::new(&[("query", 8), ("count", 14), ("EH[s]", 10)]);
    for (name, query) in [
        ("triangle", queries::TRIANGLE),
        ("K4", queries::K4),
        ("L3,1", queries::LOLLIPOP),
        ("B3,1", queries::BARBELL),
    ] {
        let stmt = db.prepare(query).expect("paper query must compile");
        let run = || {
            stmt.execute(&db)
                .expect("query must run")
                .scalar_u64()
                .unwrap_or(0)
        };
        let count = run(); // warm every cached trie
        let d = measure(reps, run);
        t.row(&[name.into(), count.to_string(), secs(d)]);
        record("loaded", path, name, "EH", d, count);
    }
}

/// End-to-end storage check (also the CI smoke step): load a dataset,
/// answer the paper's triangle/K4 queries, save a database image,
/// reopen it, and require identical answers — plus byte-stable re-save.
fn storage_smoke(load: Option<&str>) {
    let Some(path) = load else {
        eprintln!("the 'storage-smoke' target needs --load <path>");
        std::process::exit(2);
    };
    let db = load_external(path);
    let answers = |db: &Database| -> Vec<u64> {
        [queries::TRIANGLE, queries::K4]
            .iter()
            .map(|q| {
                db.prepare(q)
                    .expect("query must compile")
                    .execute(db)
                    .expect("query must run")
                    .scalar_u64()
                    .unwrap_or(0)
            })
            .collect()
    };
    let before = answers(&db);
    let image = std::env::temp_dir().join(format!("eh_smoke_{}.ehdb", std::process::id()));
    db.save(&image).expect("save must succeed");
    let reopened = Database::open(&image).expect("open must succeed");
    let after = answers(&reopened);
    let mut resaved = Vec::new();
    reopened
        .save_to(&mut resaved)
        .expect("re-save must succeed");
    let original = std::fs::read(&image).expect("image readable");
    let _ = std::fs::remove_file(&image);
    if before != after {
        eprintln!("storage smoke FAILED: answers {before:?} != {after:?} after reload");
        std::process::exit(1);
    }
    if original != resaved {
        eprintln!("storage smoke FAILED: image not byte-stable under re-save");
        std::process::exit(1);
    }
    println!(
        "storage smoke OK: triangle={} K4={} identical across save/open; image byte-stable ({} bytes)",
        before[0],
        before[1],
        original.len()
    );
}

// ------------------------------------------------------------ skew bench

/// Morsel-driven vs static-partition level-0 scheduling on a skewed
/// (preferential-attachment power-law) graph — the workload where static
/// range partitioning straggles on the hub's partition. Also the CI
/// skew-smoke gate: exits non-zero if any scheduler's triangle count
/// disagrees with the serial answer.
fn skew(scale: f64, reps: usize) {
    let nodes = ((20_000.0 * scale) as u32).max(64);
    let g = Graph::power_law(nodes, 8, 42).prune_by_degree();
    let par = THREADS.get().copied().flatten().unwrap_or(0);
    let workers = Config::default().with_threads(par).effective_threads();
    println!(
        "\n== Skewed scheduling: power-law graph ({} nodes, {} edges, skewness {:.1}, {} workers) ==",
        g.num_nodes,
        g.num_edges(),
        g.degree_skewness(),
        workers
    );
    let t = Table::new(&[
        ("config", 10),
        ("count", 12),
        ("time[s]", 10),
        ("vs serial", 10),
    ]);
    let serial_cfg = tuned(Config::default()).with_threads(1);
    let static_cfg = tuned(Config::default())
        .with_threads(par)
        .with_scheduler(Scheduler::Static);
    let morsel_cfg = tuned(Config::default())
        .with_threads(par)
        .with_scheduler(Scheduler::Morsel);
    let mut results: Vec<(&str, u64, Duration)> = Vec::new();
    for (name, cfg) in [
        ("serial", serial_cfg),
        ("static", static_cfg),
        ("morsel", morsel_cfg),
    ] {
        let mut pq = PreparedQuery::new(&g, cfg, queries::TRIANGLE);
        let count = pq.run(); // warm the trie cache
        let d = measure(reps, || pq.run());
        record("skew", "skew", "triangle", name, d, count);
        results.push((name, count, d));
    }
    let serial_time = results[0].2;
    for (name, count, d) in &results {
        t.row(&[
            (*name).into(),
            count.to_string(),
            secs(*d),
            ratio(*d, serial_time),
        ]);
    }
    let serial_count = results[0].1;
    if results.iter().any(|(_, c, _)| *c != serial_count) {
        eprintln!("skew smoke FAILED: scheduler answers diverge: {results:?}");
        std::process::exit(1);
    }
    println!("(morsel should match or beat static on skewed degree distributions)");
}

// ----------------------------------------------------- trajectory bench

/// The fixed query suite behind the committed `BENCH_*.json` performance
/// trajectory: medians (via [`measure_median`]) for triangle count/list,
/// 2-hop, a power-law skew triangle, and an anchored selection, each under
/// the adaptive engine and the static-layout ablation. Run with
/// `--threads 1 --json BENCH_N.json` to (re)generate a baseline;
/// `eh_bench --compare OLD.json NEW.json` gates regressions in CI.
fn bench_trajectory(scale: f64) {
    let reps = 7;
    println!("\n== Performance trajectory suite (scale {scale}, median of {reps}) ==");
    let t = Table::new(&[
        ("dataset", 10),
        ("query", 14),
        ("config", 10),
        ("median[s]", 12),
        ("rows", 12),
    ]);
    let nodes = ((20_000.0 * scale) as u32).max(64);
    let uniform = gen::erdos_renyi(nodes, 8 * nodes as usize, 7).prune_by_degree();
    let skewed = Graph::power_law(nodes, 8, 42).prune_by_degree();
    let hub = skewed.max_degree_node();
    let two_hop = "H2(;w:long) :- Edge(x,y),Edge(y,z); w=<<COUNT(*)>>.";
    let triangle_list = "T(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).";
    let anchored =
        format!("SA(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,'{hub}'); w=<<COUNT(*)>>.");
    let suite: [(&str, &Graph, &str, &str); 5] = [
        ("uniform", &uniform, "triangle", queries::TRIANGLE),
        ("uniform", &uniform, "triangle-list", triangle_list),
        ("uniform", &uniform, "2hop", two_hop),
        ("skew", &skewed, "triangle", queries::TRIANGLE),
        ("skew", &skewed, "anchored-sel", anchored.as_str()),
    ];
    let profiled = PROFILE.get().copied().unwrap_or(false);
    for (dataset, graph, qname, query) in suite {
        for (config, cfg) in [
            ("adaptive", tuned(Config::default())),
            ("static", tuned(Config::static_layout())),
        ] {
            let mut db = Database::with_config(cfg);
            db.load_graph("Edge", graph);
            let stmt = db.prepare(query).expect("trajectory query must compile");
            let run = || stmt.execute(&db).expect("trajectory query must run");
            let rows = {
                let out = run(); // warm every cached trie
                out.scalar_u64().unwrap_or(out.num_rows() as u64)
            };
            let d = measure_median(reps, run);
            // Observed work comes from a separate profiled run so the
            // medians above are never measured with profiling on.
            let work = profiled.then(|| {
                let mut pdb = Database::with_config(cfg.with_profile(true));
                pdb.load_graph("Edge", graph);
                let out = pdb
                    .prepare(query)
                    .expect("trajectory query must compile")
                    .execute(&pdb)
                    .expect("trajectory query must run");
                out.profile().expect("profiled run attaches a profile").work
            });
            record_with_work(
                "bench-trajectory",
                dataset,
                qname,
                config,
                d,
                rows,
                work.as_ref(),
            );
            t.row(&[
                dataset.into(),
                qname.into(),
                config.into(),
                secs(d),
                rows.to_string(),
            ]);
        }
    }
    println!("(adaptive and static must agree on rows; medians feed BENCH_*.json)");
}

/// Uniform random sorted set of the given density over a domain.
fn random_set(domain: u32, density: f64, seed: u64) -> Vec<u32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..domain).filter(|_| rng.gen_bool(density)).collect()
}

// ---------------------------------------------------------------- Figure 5

/// Figure 5: uint vs bitset intersection time across densities.
fn fig5() {
    println!("\n== Figure 5: intersection time vs density (domain 2^20) ==");
    let t = Table::new(&[
        ("density", 10),
        ("uint[s]", 12),
        ("bitset[s]", 12),
        ("winner", 8),
    ]);
    let cfg = IntersectConfig::default();
    let domain = 1 << 20;
    for &density in &[1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1] {
        let a = random_set(domain, density, 1);
        let b = random_set(domain, density, 2);
        let (ua, ub) = (
            Set::from_sorted(&a, LayoutKind::Uint),
            Set::from_sorted(&b, LayoutKind::Uint),
        );
        let (ba, bb) = (
            Set::from_sorted(&a, LayoutKind::Bitset),
            Set::from_sorted(&b, LayoutKind::Bitset),
        );
        let tu = measure(7, || eh_set::intersect_count(&ua, &ub, &cfg));
        let tb = measure(7, || eh_set::intersect_count(&ba, &bb, &cfg));
        t.row(&[
            format!("{density:.0e}"),
            format!("{:.2e}", tu.as_secs_f64()),
            format!("{:.2e}", tb.as_secs_f64()),
            if tu < tb { "uint" } else { "bitset" }.into(),
        ]);
    }
    println!("(paper: uint wins at low density, bitset at high; crossover ~1e-2)");
}

// ---------------------------------------------------------------- Figure 6

/// Figure 6: layouts on sets with a dense region plus a sparse tail of
/// varying cardinality.
fn fig6() {
    println!("\n== Figure 6: intersection time vs sparse-region cardinality ==");
    let t = Table::new(&[
        ("sparse_card", 12),
        ("uint[s]", 12),
        ("bitset[s]", 12),
        ("composite[s]", 12),
    ]);
    let cfg = IntersectConfig::default();
    // Dense region: 0..8192 fully populated. Sparse region: `card` values
    // scattered over a huge tail.
    for &card in &[128usize, 512, 1024, 4096, 16_384] {
        let make = |seed: u64| -> Vec<u32> {
            let mut v: Vec<u32> = (0..8192).collect();
            let tail = random_set(1 << 24, card as f64 / (1 << 24) as f64, seed);
            v.extend(tail.iter().map(|x| x + 8192));
            v
        };
        let a = make(3);
        let b = make(4);
        let mut row = vec![format!("{card}")];
        for kind in [LayoutKind::Uint, LayoutKind::Bitset, LayoutKind::Block] {
            let sa = Set::from_sorted(&a, kind);
            let sb = Set::from_sorted(&b, kind);
            let d = measure(7, || eh_set::intersect_count(&sa, &sb, &cfg));
            row.push(format!("{:.2e}", d.as_secs_f64()));
        }
        t.row(&row);
    }
    println!("(paper: the composite layout wins when dense and sparse regions mix)");
}

// ---------------------------------------------------------------- Table 3

/// Table 3: dataset statistics (analog scale).
fn table3(scale: f64) {
    println!("\n== Table 3: dataset analogs (scale {scale}) ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("nodes", 9),
        ("dir.edges", 10),
        ("undir", 10),
        ("skew", 8),
        ("paper_skew", 10),
    ]);
    for spec in paper_datasets() {
        let g = spec.generate_scaled(scale);
        let pruned = g.prune_by_degree();
        t.row(&[
            spec.name.into(),
            g.num_nodes.to_string(),
            g.num_edges().to_string(),
            pruned.num_edges().to_string(),
            format!("{:.2}", g.density_skew()),
            format!("{:.2}", spec.paper_skew),
        ]);
    }
}

// ---------------------------------------------------------------- Table 4

/// Table 4: relation/set/block-level layout optimizers vs the oracle on
/// the triangle-counting intersection workload.
fn table4(scale: f64) {
    println!("\n== Table 4: layout-optimizer granularity vs oracle (triangle intersections) ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("relation", 10),
        ("set", 10),
        ("block", 10),
    ]);
    let cfg = IntersectConfig::default();
    for spec in paper_datasets().into_iter().take(5) {
        let g = spec.generate_scaled(scale).prune_by_degree();
        let csr = g.to_csr();
        // The triangle workload: one intersection N(x) ∩ N(y) per edge.
        let pairs: Vec<(&[u32], &[u32])> = g
            .edges
            .iter()
            .map(|&(x, y)| (csr.neighbors(x), csr.neighbors(y)))
            .filter(|(a, b)| !a.is_empty() && !b.is_empty())
            .take(4000)
            .collect();
        // Oracle lower bound: best layout pair per intersection.
        let oracle: Duration = pairs
            .iter()
            .map(|(a, b)| eh_set::oracle::oracle_intersect(a, b, &cfg).best)
            .sum();
        // Each granularity: pre-build under the policy, time the sweep.
        let level_time = |policy: eh_set::LayoutPolicy| -> Duration {
            let built: Vec<(Set, Set)> = pairs
                .iter()
                .map(|(a, b)| (policy.build(a), policy.build(b)))
                .collect();
            measure(5, || {
                let mut n = 0usize;
                for (a, b) in &built {
                    n += eh_set::intersect_count(a, b, &cfg);
                }
                n
            })
        };
        let rel = level_time(eh_set::LayoutPolicy::Fixed(LayoutKind::Uint));
        let set = level_time(eh_set::LayoutPolicy::SetLevel);
        let block = level_time(eh_set::LayoutPolicy::BlockLevel);
        t.row(&[
            spec.name.into(),
            ratio(rel, oracle),
            ratio(set, oracle),
            ratio(block, oracle),
        ]);
    }
    println!("(paper: set level closest to oracle overall — at most 1.6x off)");
}

// ---------------------------------------------------------------- Table 5

/// Table 5: triangle counting, EmptyHeaded vs engine classes.
fn table5(scale: f64, reps: usize) {
    println!("\n== Table 5: triangle counting (pruned graphs) ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("count", 10),
        ("EH[s]", 10),
        ("SnapR", 8),
        ("PG", 8),
        ("SL", 10),
        ("LB", 8),
    ]);
    for spec in paper_datasets() {
        let g = spec.generate_scaled(scale).prune_by_degree();
        let csr = g.to_csr();
        let mut eh = PreparedQuery::new(&g, tuned(Config::default()), queries::TRIANGLE);
        let count = eh.run();
        let t_eh = measure(reps, || eh.run());
        let t_merge = measure(reps, || eh_baselines::lowlevel::triangle_count_merge(&csr));
        let t_hash = measure(reps, || eh_baselines::lowlevel::triangle_count_hash(&csr));
        let t_pair = measure(reps, || eh_baselines::pairwise::triangle_count(&g.edges));
        // LogicBlox-class: WCOJ, no layout/algorithm optimization.
        let mut lb = PreparedQuery::new(
            &g,
            tuned(Config::no_layout_no_algorithms()),
            queries::TRIANGLE,
        );
        let t_lb = measure(reps, || lb.run());
        for (config, d) in [
            ("EH", t_eh),
            ("SnapR-merge", t_merge),
            ("PG-hash", t_hash),
            ("SL-pairwise", t_pair),
            ("LB-wcoj", t_lb),
        ] {
            record("table5", spec.name, "triangle", config, d, count);
        }
        t.row(&[
            spec.name.into(),
            count.to_string(),
            secs(t_eh),
            ratio(t_merge, t_eh),
            ratio(t_hash, t_eh),
            ratio(t_pair, t_eh),
            ratio(t_lb, t_eh),
        ]);
    }
    println!("(columns after EH are relative slowdowns, as in the paper)");
}

// ---------------------------------------------------------------- Table 6

/// Table 6: PageRank, 5 iterations, undirected graphs.
fn table6(scale: f64, reps: usize) {
    println!("\n== Table 6: PageRank (5 iterations) ==");
    let t = Table::new(&[("dataset", 12), ("EH[s]", 10), ("Galois", 8), ("SL", 8)]);
    for spec in paper_datasets() {
        let g = spec.generate_scaled(scale);
        let mut runner =
            eh_core::algorithms::PageRankRunner::new(&g, 5, tuned(Config::default())).unwrap();
        let t_eh = measure(reps, || runner.run().unwrap());
        let t_ll = measure(reps, || eh_baselines::lowlevel::pagerank(&g, 5));
        let t_sl = measure(reps, || {
            eh_baselines::pairwise::pagerank(&g.edges, g.num_nodes, 5)
        });
        let rows = g.num_nodes as u64;
        for (config, d) in [("EH", t_eh), ("Galois-ll", t_ll), ("SL-pairwise", t_sl)] {
            record("table6", spec.name, "pagerank5", config, d, rows);
        }
        t.row(&[
            spec.name.into(),
            secs(t_eh),
            ratio(t_ll, t_eh),
            ratio(t_sl, t_eh),
        ]);
    }
    println!("(paper: EH within ~2x of Galois, well ahead of high-level engines)");
}

// ---------------------------------------------------------------- Table 7

/// Table 7: SSSP from the highest-degree node.
fn table7(scale: f64, reps: usize) {
    println!("\n== Table 7: SSSP (start = max-degree node) ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("EH[s]", 10),
        ("Galois", 8),
        ("PG", 8),
        ("SL", 8),
    ]);
    for spec in paper_datasets() {
        let g = spec.generate_scaled(scale);
        let start = g.max_degree_node();
        let mut runner =
            eh_core::algorithms::SsspRunner::new(&g, start, tuned(Config::default())).unwrap();
        let t_eh = measure(reps, || runner.run().unwrap());
        let t_bfs = measure(reps, || eh_baselines::lowlevel::sssp_bfs(&g, start));
        let t_bf = measure(reps, || {
            eh_baselines::lowlevel::sssp_bellman_ford(&g, start)
        });
        let t_sl = measure(reps, || {
            eh_baselines::pairwise::sssp_naive_datalog(&g.edges, g.num_nodes, start)
        });
        let rows = g.num_nodes as u64;
        for (config, d) in [
            ("EH", t_eh),
            ("Galois-bfs", t_bfs),
            ("PG-bellmanford", t_bf),
            ("SL-pairwise", t_sl),
        ] {
            record("table7", spec.name, "sssp", config, d, rows);
        }
        t.row(&[
            spec.name.into(),
            secs(t_eh),
            ratio(t_bfs, t_eh),
            ratio(t_bf, t_eh),
            ratio(t_sl, t_eh),
        ]);
    }
    println!("(paper: Galois ≤3x faster than EH; PowerGraph/SociaLite ~10x slower)");
}

// ---------------------------------------------------------------- Table 8

/// Table 8: K4 / Lollipop / Barbell with -R, -RA, -GHD ablations.
fn table8(scale: f64) {
    println!("\n== Table 8: pattern queries with ablations ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("query", 6),
        ("count", 14),
        ("EH[s]", 10),
        ("-R", 8),
        ("-RA", 8),
        ("-GHD", 10),
        ("SL", 10),
    ]);
    // K4 etc. get expensive fast; use a reduced scale for the sweep.
    let qscale = scale * 0.5;
    for spec in paper_datasets().into_iter().take(5) {
        let g = spec.generate_scaled(qscale);
        let pruned = g.prune_by_degree();
        for (qname, query, graph, ghd_feasible) in [
            ("K4", queries::K4, &pruned, true),
            ("L3,1", queries::LOLLIPOP, &g, true),
            ("B3,1", queries::BARBELL, &g, false),
        ] {
            let mut eh = PreparedQuery::new(graph, tuned(Config::default()), query);
            let count = eh.run();
            let t_eh = measure_once(|| eh.run());
            let mut r = PreparedQuery::new(graph, tuned(Config::uint_only()), query);
            let t_r = measure_once(|| r.run());
            let mut ra = PreparedQuery::new(graph, tuned(Config::no_layout_no_algorithms()), query);
            let t_ra = measure_once(|| ra.run());
            let ghd_col = if ghd_feasible {
                let mut nghd = PreparedQuery::new(graph, tuned(Config::no_ghd()), query);
                ratio(measure_once(|| nghd.run()), t_eh)
            } else {
                "t/o".into() // Θ(N³) single-node plan — times out, as in the paper
            };
            let sl = match qname {
                "K4" => ratio(
                    measure_once(|| eh_baselines::pairwise::four_clique_count(&graph.edges)),
                    t_eh,
                ),
                "L3,1" => ratio(
                    measure_once(|| eh_baselines::pairwise::lollipop_count(&graph.edges)),
                    t_eh,
                ),
                _ => ratio(
                    measure_once(|| eh_baselines::pairwise::barbell_count(&graph.edges)),
                    t_eh,
                ),
            };
            for (config, d) in [("EH", t_eh), ("-R", t_r), ("-RA", t_ra)] {
                record("table8", spec.name, qname, config, d, count);
            }
            t.row(&[
                spec.name.into(),
                qname.into(),
                count.to_string(),
                secs(t_eh),
                ratio(t_r, t_eh),
                ratio(t_ra, t_eh),
                ghd_col,
                sl,
            ]);
        }
    }
    println!("(paper: -RA costs up to 1000x, -GHD times out on B3,1)");
}

// ---------------------------------------------------------------- Table 9

/// Table 9: node-ordering preprocessing times.
fn table9(scale: f64) {
    println!("\n== Table 9: node ordering times ==");
    let higgs = paper_datasets()[1].generate_scaled(scale);
    let lj = paper_datasets()[2].generate_scaled(scale);
    let t = Table::new(&[("ordering", 16), ("Higgs[s]", 10), ("LiveJournal[s]", 14)]);
    for scheme in OrderingScheme::ALL {
        let th = measure(3, || compute_ordering(&higgs, scheme));
        let tl = measure(3, || compute_ordering(&lj, scheme));
        t.row(&[scheme.name().into(), secs(th), secs(tl)]);
    }
    println!("(paper: degree orders cheap, BFS linear in edges, hybrid = BFS + sort)");
}

// ---------------------------------------------------------------- Figure 7

/// Figure 7: ordering effect on triangle counting over power-law exponent.
fn fig7() {
    println!("\n== Figure 7: triangle time vs power-law exponent, per ordering ==");
    let t = Table::new(&[
        ("exponent", 9),
        ("Random", 9),
        ("BFS", 9),
        ("Degree", 9),
        ("RevDeg", 9),
        ("Strong", 9),
        ("Shingle", 9),
        ("Hybrid", 9),
    ]);
    for &exp in &[2.0f64, 2.3, 3.0] {
        let g = gen::power_law(4000, 40_000, exp, 77);
        let mut row = vec![format!("{exp:.1}")];
        for scheme in [
            OrderingScheme::Random,
            OrderingScheme::Bfs,
            OrderingScheme::Degree,
            OrderingScheme::RevDegree,
            OrderingScheme::StrongRuns,
            OrderingScheme::Shingle,
            OrderingScheme::Hybrid,
        ] {
            let perm = compute_ordering(&g, scheme);
            let h = apply_ordering(&g, &perm).prune_current_order();
            let mut pq = PreparedQuery::new(&h, tuned(Config::default()), queries::TRIANGLE);
            let d = measure(3, || pq.run());
            row.push(format!("{:.4}", d.as_secs_f64()));
        }
        t.row(&row);
    }
    println!("(paper: Degree best at low exponents, BFS at high; hybrid tracks both)");
}

// --------------------------------------------------------------- Table 10

/// Table 10: random vs degree ordering, with and without symmetric
/// filtering, uint-only vs the set-level optimizer.
fn table10(scale: f64) {
    println!("\n== Table 10: random-vs-degree ordering slowdowns ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("def-uint", 10),
        ("def-EH", 10),
        ("sym-uint", 10),
        ("sym-EH", 10),
    ]);
    for spec in paper_datasets().into_iter().take(5) {
        let g = spec.generate_scaled(scale);
        let mut cells = vec![spec.name.to_string()];
        for symmetric in [false, true] {
            for cfg in [tuned(Config::uint_only()), tuned(Config::default())] {
                let time_with = |scheme: OrderingScheme| -> Duration {
                    let perm = compute_ordering(&g, scheme);
                    let h = apply_ordering(&g, &perm);
                    let h = if symmetric {
                        h.prune_current_order()
                    } else {
                        h
                    };
                    let mut pq = PreparedQuery::new(&h, cfg, queries::TRIANGLE);
                    measure(3, || pq.run())
                };
                let random = time_with(OrderingScheme::Random);
                let degree = time_with(OrderingScheme::Degree);
                cells.push(ratio(random, degree));
            }
        }
        t.row(&cells);
    }
    println!("(paper: ordering matters mainly under symmetric filtering)");
}

// --------------------------------------------------------------- Table 11

/// Table 11: -S / -R / -SR ablations, default vs symmetrically filtered.
fn table11(scale: f64) {
    println!("\n== Table 11: SIMD/layout ablations on triangle counting ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("def -S", 8),
        ("def -R", 8),
        ("def -SR", 8),
        ("sym -S", 8),
        ("sym -R", 8),
        ("sym -SR", 8),
    ]);
    let no_simd_no_layout = || -> Config {
        let mut c = tuned(Config::uint_only());
        c.intersect = IntersectConfig::no_simd();
        c
    };
    for spec in paper_datasets().into_iter().take(5) {
        let mut cells = vec![spec.name.to_string()];
        let g = spec.generate_scaled(scale);
        for symmetric in [false, true] {
            let h = if symmetric {
                g.prune_by_degree()
            } else {
                g.clone()
            };
            let mut base = PreparedQuery::new(&h, tuned(Config::default()), queries::TRIANGLE);
            let t_base = measure(3, || base.run());
            for cfg in [
                tuned(Config::no_simd()),
                tuned(Config::uint_only()),
                no_simd_no_layout(),
            ] {
                let mut pq = PreparedQuery::new(&h, cfg, queries::TRIANGLE);
                let d = measure(3, || pq.run());
                cells.push(ratio(d, t_base));
            }
        }
        t.row(&cells);
    }
    println!("(paper: layout+SIMD up to 13x on skewed unfiltered data)");
}

// --------------------------------------------------------------- Table 13

/// Table 13: selection queries (4-clique / barbell anchored at a node),
/// with and without cross-node selection push-down.
fn table13(scale: f64) {
    println!("\n== Table 13: selection queries (push-down across GHD nodes) ==");
    let t = Table::new(&[
        ("dataset", 12),
        ("query", 7),
        ("degree", 7),
        ("|out|", 12),
        ("EH[s]", 10),
        ("-PD", 10),
        ("SL", 10),
    ]);
    for spec in paper_datasets().into_iter().take(3) {
        let g = spec.generate_scaled(scale * 0.5);
        let deg = g.total_degrees();
        let high = g.max_degree_node();
        let low = (0..g.num_nodes)
            .filter(|&v| deg[v as usize] > 0)
            .min_by_key(|&v| deg[v as usize])
            .unwrap_or(0);
        for (label, node) in [("high", high), ("low", low)] {
            let sk4 = format!(
                "SK4(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),Edge(y,u),Edge(z,u),Edge(x,'{node}'); w=<<COUNT(*)>>."
            );
            let sb = format!(
                "SB(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,'{node}'),Edge('{node}',a),Edge(a,b),Edge(b,c),Edge(a,c); w=<<COUNT(*)>>."
            );
            for (qname, q) in [("SK4", sk4.as_str()), ("SB3,1", sb.as_str())] {
                let mut eh = PreparedQuery::new(&g, tuned(Config::default()), q);
                let out_card = eh.run();
                let t_eh = measure_once(|| eh.run());
                let mut no_pd_cfg = tuned(Config::default());
                no_pd_cfg.plan.push_down_selections = false;
                let mut no_pd = PreparedQuery::new(&g, no_pd_cfg, q);
                let t_no_pd = measure_once(|| no_pd.run());
                // SociaLite-class has no selection-aware WCOJ plan: it pays
                // the full unanchored pattern then filters.
                let t_sl = measure_once(|| match qname {
                    "SK4" => eh_baselines::pairwise::four_clique_count(&g.edges),
                    _ => eh_baselines::pairwise::barbell_count(&g.edges),
                });
                t.row(&[
                    spec.name.into(),
                    qname.into(),
                    label.into(),
                    out_card.to_string(),
                    secs(t_eh),
                    ratio(t_no_pd, t_eh),
                    ratio(t_sl, t_eh),
                ]);
            }
        }
    }
    println!("(paper: push-down worth up to four orders of magnitude)");
}

/// Unused-table guard (keeps the binary honest about coverage).
#[allow(dead_code)]
fn coverage() -> &'static [&'static str] {
    &[
        "fig5", "fig6", "fig7", "table3", "table4", "table5", "table6", "table7", "table8",
        "table9", "table10", "table11", "table13",
    ]
}

#[allow(unused_imports)]
use eh_exec as _;
#[allow(unused_imports)]
use eh_ghd as _;
#[allow(unused_imports)]
use eh_query as _;
#[allow(unused_imports)]
use eh_trie as _;

// Silence unused warnings for re-exported helper types used only in some
// subcommands.
#[allow(dead_code)]
fn _unused(_: &Database, _: AggOp, _: DynValue, _: &Graph, _: &Instant) {}
