//! Recursive-descent parser for the EmptyHeaded query language.
//!
//! Grammar (informal):
//!
//! ```text
//! program    := rule+
//! rule       := head ':-' body ( ';' aggclause )? '.'
//! head       := IDENT '(' headargs ')' recursion?
//! headargs   := var (',' var)* ( ';' annot )? | ';' annot | ε
//! annot      := IDENT ':' IDENT
//! recursion  := '*' ( '[' ('i'|'c') '=' NUMBER ']' )?
//! body       := atom (',' atom)*
//! atom       := IDENT '(' term (',' term)* ')'
//! term       := IDENT | STRING | NUMBER
//! aggclause  := IDENT '=' expr
//! expr       := mul (('+'|'-') mul)*
//! mul        := unit (('*'|'/') unit)*
//! unit       := NUMBER | IDENT | '<<' IDENT '(' ('*'|vars) ')' '>>' | '(' expr ')'
//! ```

use crate::ast::*;
use crate::lexer::{Lexer, Token};
use std::fmt;

/// Parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: msg.into(),
    })
}

/// Parse a whole program (one or more rules).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src).tokenize().map_err(|(pos, m)| ParseError {
        message: format!("at byte {pos}: {m}"),
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    if rules.is_empty() {
        return err("empty program");
    }
    Ok(Program { rules })
}

/// Parse exactly one rule.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let prog = parse_program(src)?;
    if prog.rules.len() != 1 {
        return err(format!("expected 1 rule, found {}", prog.rules.len()));
    }
    Ok(prog.rules.into_iter().next().unwrap())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref got) if got == t => Ok(()),
            Some(got) => err(format!("expected '{t}', found '{got}'")),
            None => err(format!("expected '{t}', found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            Some(got) => err(format!("expected identifier, found '{got}'")),
            None => err("expected identifier, found end of input"),
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.head()?;
        self.expect(&Token::Implies)?;
        let mut body = vec![self.atom()?];
        while self.eat(&Token::Comma) {
            body.push(self.atom()?);
        }
        let agg = if self.eat(&Token::Semicolon) {
            Some(self.agg_clause()?)
        } else {
            None
        };
        self.expect(&Token::Dot)?;
        Ok(Rule { head, body, agg })
    }

    fn head(&mut self) -> Result<HeadAtom, ParseError> {
        let relation = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut key_vars = Vec::new();
        let mut annotation = None;
        if !self.eat(&Token::RParen) {
            // Key vars until ';' or ')'.
            if self.peek() != Some(&Token::Semicolon) {
                key_vars.push(self.ident()?);
                while self.eat(&Token::Comma) {
                    key_vars.push(self.ident()?);
                }
            }
            if self.eat(&Token::Semicolon) {
                let name = self.ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.ident()?;
                annotation = Some(Annotation { name, ty });
            }
            self.expect(&Token::RParen)?;
        }
        let recursion = if self.eat(&Token::Star) {
            if self.eat(&Token::LBracket) {
                let kind = self.ident()?;
                self.expect(&Token::Eq)?;
                let n = match self.bump() {
                    Some(Token::Number(n)) => n,
                    other => {
                        return err(format!(
                            "expected number in recursion bound, found {other:?}"
                        ))
                    }
                };
                self.expect(&Token::RBracket)?;
                match kind.as_str() {
                    "i" => Some(Recursion::Iterations(n as u32)),
                    "c" => Some(Recursion::Epsilon(n)),
                    other => return err(format!("unknown recursion criterion '{other}'")),
                }
            } else {
                Some(Recursion::Fixpoint)
            }
        } else {
            None
        };
        Ok(HeadAtom {
            relation,
            key_vars,
            annotation,
            recursion,
        })
    }

    fn atom(&mut self) -> Result<BodyAtom, ParseError> {
        let relation = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut terms = vec![self.term()?];
        while self.eat(&Token::Comma) {
            terms.push(self.term()?);
        }
        self.expect(&Token::RParen)?;
        Ok(BodyAtom { relation, terms })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(Term::Var(s)),
            Some(Token::Str(s)) => Ok(Term::Const(s)),
            Some(Token::Number(n)) => Ok(Term::Const(format_const(n))),
            other => err(format!("expected term, found {other:?}")),
        }
    }

    fn agg_clause(&mut self) -> Result<AggExpr, ParseError> {
        let result_var = self.ident()?;
        self.expect(&Token::Eq)?;
        let expr = self.expr()?;
        Ok(AggExpr { result_var, expr })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unit()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unit()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unit(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Num(n)),
            Some(Token::Ident(name)) => Ok(Expr::ScalarRef(name)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::AggOpen) => {
                let op_name = self.ident()?;
                let op = AggOp::parse(&op_name).ok_or_else(|| ParseError {
                    message: format!("unknown aggregate '{op_name}'"),
                })?;
                self.expect(&Token::LParen)?;
                let mut vars = Vec::new();
                if self.eat(&Token::Star) {
                    // COUNT(*) — empty var list.
                } else {
                    vars.push(self.ident()?);
                    while self.eat(&Token::Comma) {
                        vars.push(self.ident()?);
                    }
                }
                self.expect(&Token::RParen)?;
                self.expect(&Token::AggClose)?;
                Ok(Expr::Agg(op, vars))
            }
            other => err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Render a numeric constant the way the dictionary will see it (integers
/// without a trailing `.0`).
fn format_const(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle() {
        let r = parse_rule("Triangle(x,y,z) :- R(x,y),S(y,z),T(x,z).").unwrap();
        assert_eq!(r.head.relation, "Triangle");
        assert_eq!(r.head.key_vars, vec!["x", "y", "z"]);
        assert_eq!(r.body.len(), 3);
        assert!(r.agg.is_none());
        assert_eq!(r.body_vars(), vec!["x", "y", "z"]);
    }

    #[test]
    fn count_triangle() {
        let r =
            parse_rule("CountTriangle(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.").unwrap();
        assert!(r.head.key_vars.is_empty());
        assert_eq!(r.head.annotation.as_ref().unwrap().name, "w");
        let agg = r.agg.unwrap();
        assert_eq!(agg.expr, Expr::Agg(AggOp::Count, vec![]));
    }

    #[test]
    fn pagerank_recursive() {
        let r = parse_rule(
            "PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.",
        )
        .unwrap();
        assert_eq!(r.head.recursion, Some(Recursion::Iterations(5)));
        assert!(r.is_recursive());
        let agg = r.agg.unwrap();
        assert_eq!(agg.expr.agg_op(), Some(AggOp::Sum));
        assert_eq!(agg.expr.eval(1.0, &|_| None), Some(1.0));
    }

    #[test]
    fn sssp_fixpoint() {
        let r = parse_rule("SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.").unwrap();
        assert_eq!(r.head.recursion, Some(Recursion::Fixpoint));
        let agg = r.agg.unwrap();
        assert_eq!(agg.expr.eval(3.0, &|_| None), Some(4.0));
    }

    #[test]
    fn selection_string_and_number() {
        let r = parse_rule("Q(x) :- Edge('start',x),P(x,7).").unwrap();
        assert_eq!(r.body[0].terms[0], Term::Const("start".into()));
        assert_eq!(r.body[1].terms[1], Term::Const("7".into()));
    }

    #[test]
    fn epsilon_criterion() {
        let r = parse_rule("P(x;y:float)*[c=0.001] :- E(x,z),P(z); y=<<SUM(z)>>.").unwrap();
        assert_eq!(r.head.recursion, Some(Recursion::Epsilon(0.001)));
    }

    #[test]
    fn program_multiple_rules() {
        let p = parse_program(
            "N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.\n\
             PageRank(x;y:float) :- Edge(x,z); y=1/N.",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.rules[1].agg.as_ref().unwrap().expr.scalar_refs(),
            vec!["N"]
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_rule("T(x) :- ").is_err());
        assert!(parse_rule("T(x) R(x).").is_err());
        assert!(parse_rule("T(x) :- R(x)").is_err(), "missing dot");
        assert!(parse_rule("T(x;w) :- R(x).").is_err(), "annot needs type");
        assert!(parse_rule("T(;w:long) :- R(x); w=<<MEDIAN(x)>>.").is_err());
        assert!(parse_program("").is_err());
    }

    #[test]
    fn parenthesized_expr() {
        let r = parse_rule("T(;w:float) :- R(x); w=(1+2)*3.").unwrap();
        assert_eq!(r.agg.unwrap().expr.eval(0.0, &|_| None), Some(9.0));
    }
}
