//! Tokenizer for the EmptyHeaded query language.

use std::fmt;

/// Lexical tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier (relation or variable name).
    Ident(String),
    /// Numeric literal (integer or float).
    Number(f64),
    /// Quoted string constant (single or double quotes).
    Str(String),
    /// `:-`
    Implies,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `<<`
    AggOpen,
    /// `>>`
    AggClose,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Implies => write!(f, ":-"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::AggOpen => write!(f, "<<"),
            Token::AggClose => write!(f, ">>"),
        }
    }
}

/// Streaming lexer over query text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// New lexer over source text.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize everything, reporting the byte offset of any error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, (usize, String)> {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn next_token(&mut self) -> Result<Option<Token>, (usize, String)> {
        // Skip whitespace and `#` / `//` comments.
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let start = self.pos;
        let Some(c) = self.bump() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b'[' => Token::LBracket,
            b']' => Token::RBracket,
            b',' => Token::Comma,
            b';' => Token::Semicolon,
            b'.' => Token::Dot,
            b'*' => Token::Star,
            b'=' => Token::Eq,
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'/' => Token::Slash,
            b':' => {
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                    Token::Implies
                } else {
                    Token::Colon
                }
            }
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.pos += 1;
                    Token::AggOpen
                } else {
                    return Err((start, "expected '<<'".into()));
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    Token::AggClose
                } else {
                    return Err((start, "expected '>>'".into()));
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(ch) if ch == quote => break,
                        Some(ch) => s.push(ch as char),
                        None => return Err((start, "unterminated string".into())),
                    }
                }
                Token::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut end = self.pos;
                while let Some(ch) = self.src.get(end) {
                    if ch.is_ascii_digit() || *ch == b'.' {
                        // Don't swallow the rule-terminating dot: a dot is
                        // part of the number only if followed by a digit.
                        if *ch == b'.' && !self.src.get(end + 1).is_some_and(|d| d.is_ascii_digit())
                        {
                            break;
                        }
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..end]).unwrap();
                self.pos = end;
                let n: f64 = text
                    .parse()
                    .map_err(|e| (start, format!("bad number {text}: {e}")))?;
                Token::Number(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = self.pos;
                while let Some(ch) = self.src.get(end) {
                    if ch.is_ascii_alphanumeric() || *ch == b'_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..end]).unwrap();
                self.pos = end;
                Token::Ident(text.to_string())
            }
            other => {
                return Err((start, format!("unexpected character '{}'", other as char)));
            }
        };
        Ok(Some(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s).tokenize().unwrap()
    }

    #[test]
    fn simple_rule() {
        let toks = lex("T(x,y) :- R(x,y).");
        assert_eq!(
            toks,
            vec![
                Token::Ident("T".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Ident("y".into()),
                Token::RParen,
                Token::Implies,
                Token::Ident("R".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Ident("y".into()),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn agg_tokens() {
        let toks = lex("w=<<COUNT(*)>>");
        assert_eq!(
            toks,
            vec![
                Token::Ident("w".into()),
                Token::Eq,
                Token::AggOpen,
                Token::Ident("COUNT".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
                Token::AggClose,
            ]
        );
    }

    #[test]
    fn numbers_vs_rule_dot() {
        let toks = lex("y=0.15+0.85*z.");
        assert!(matches!(toks[2], Token::Number(n) if (n - 0.15).abs() < 1e-12));
        assert!(matches!(toks[4], Token::Number(n) if (n - 0.85).abs() < 1e-12));
        assert_eq!(*toks.last().unwrap(), Token::Dot);
        // integer followed by terminating dot:
        let toks = lex("y=1.");
        assert!(matches!(toks[2], Token::Number(n) if n == 1.0));
        assert_eq!(*toks.last().unwrap(), Token::Dot);
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(lex("'abc'"), vec![Token::Str("abc".into())]);
        assert_eq!(lex("\"abc\""), vec![Token::Str("abc".into())]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("# header\nT(x) :- R(x). // trailing");
        assert_eq!(toks.len(), 10);
    }

    #[test]
    fn recursion_annotation() {
        let toks = lex("P(x;y:float)*[i=5]");
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::LBracket));
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("T(x) :- R(x)?").tokenize().is_err());
        assert!(Lexer::new("'unterminated").tokenize().is_err());
        assert!(Lexer::new("a < b").tokenize().is_err());
    }
}
